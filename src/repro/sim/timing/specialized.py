"""The ``"specialized"`` timing engine: per-(program, config) codegen.

For each (program, machine config) pair this engine generates one Python
function that schedules whole straight-line blocks of the trace at a
time.  The static timing IR (:mod:`repro.sim.timing.ir`) supplies the
block structure; the generator then constant-folds everything the
generic interpreter re-derives per dynamic instruction:

* per-opcode dispatch disappears -- each block body is the unrolled
  sequence of its instructions' scheduling code, entered after a single
  array comparison proves the trace window matches the block;
* instruction classes, latencies, source registers, memory sizes, SBox
  table ids and branch metadata become literals;
* issue/FU checks for unlimited resources are elided entirely, as is the
  whole attribution pass on machines without slot accounting;
* register-ready times live in locals, the store queue becomes a byte ->
  ``(store_order, data_ready)`` map with unrolled probes, retirement uses
  the scalar frontier (see :class:`~repro.sim.timing.stages
  .SchedulerState`), and the cache hierarchy's all-hit path (TLB hit +
  next-line resident + L1 hit) is inlined with a pure probe-then-commit
  sequence that leaves the hierarchy state exactly as
  ``MemoryHierarchy.access`` would;
* stall labels append to a frontier-ordered list (the machine-view
  frontier only ever advances, labeling each cycle exactly once), and
  per-instruction wait rows are pinned as locals, with ``wait_totals``
  recovered at finish as their column sums.

Trace windows that do not match a block -- chunk-boundary tails,
synthetic traces with explicit ``taken`` flags, static indices outside
the program -- fall back to :meth:`SpecializedPipeline._slow`, a
per-entry port of the generic loop over the *same* stage state, so fast
and slow segments interleave freely.

The output contract is bit-identical :class:`~repro.sim.stats.SimStats`
against the ``"generic"`` engine for every config, trace and chunking
(``tests/sim/test_timing_engines.py`` is the oracle).  Generated sources
are registered in :mod:`linecache` under ``<repro-timing:...>`` filenames
so tracebacks and the sampling profiler see real lines.
"""

from __future__ import annotations

import linecache
import re
import time
from array import array
from dataclasses import dataclass, field

from repro.sim.config import MachineConfig
from repro.sim.timing.ir import TimingIR, timing_ir
from repro.sim.timing.stages import (
    _C_ALIAS,
    _C_DRAIN,
    _C_FETCH,
    _C_FRONTEND,
    _C_FU_IALU,
    _C_FU_MEM,
    _C_FU_MUL,
    _C_FU_ROT,
    _C_FU_SBOX,
    _C_ISSUE,
    _C_MISPREDICT,
    _C_OPERAND,
    _C_WINDOW,
    _N_WAIT,
    _UNLIMITED,
    PipelineBase,
)
from repro.sim.trace import SEQ_TYPECODE

#: Optimization counters incremented by the code generator (the
#: ``--explain`` table and ``timing.*`` metrics surface them).
COUNTER_KEYS = (
    "blocks_unrolled",
    "latencies_folded",
    "fu_checks_elided",
    "issue_checks_elided",
    "attribution_elided",
    "branch_lookaheads_inlined",
    "memory_fast_paths",
    "forward_probes_unrolled",
)


@dataclass
class SpecializationReport:
    """What one (program, config) specialization did: counters, wall time.

    One report per generated scheduler (same key as the code cache);
    ``source_cache_hits`` counts later pipelines served from the cache.
    Surfaced as ``timing.*`` metrics (:func:`record_timing_metrics`),
    ``timing`` ledger events, and ``riscasim --timing-engine specialized
    --explain``.
    """

    digest: str
    config_name: str
    attributed: bool
    instructions: int
    blocks: int
    source_lines: int
    compile_seconds: float
    counters: dict[str, int] = field(default_factory=dict)
    source_cache_hits: int = 0

    @property
    def mode(self) -> str:
        return "attr" if self.attributed else "plain"


_CODE_CACHE: dict = {}
_REPORTS: dict = {}
_SERIAL = [0]


def cache_info() -> dict[str, int]:
    """Size of the (digest, config)-keyed generated-scheduler cache."""
    return {"size": len(_CODE_CACHE)}


def cache_clear() -> None:
    """Drop all cached generated schedulers (for tests/benchmarks)."""
    _CODE_CACHE.clear()
    _REPORTS.clear()


def specialization_reports() -> list[SpecializationReport]:
    """Every specialization this process performed, in compile order."""
    return list(_REPORTS.values())


def record_timing_metrics(registry) -> None:
    """Fold the process's specialization reports into a metrics registry.

    ``timing.programs`` / ``timing.source_cache_hits`` counters, one
    ``timing.<counter>`` counter per optimization kind, and the total
    codegen wall time as ``timing.wall_seconds``.
    """
    reports = specialization_reports()
    registry.counter("timing.programs").inc(len(reports))
    registry.counter("timing.source_cache_hits").inc(
        sum(report.source_cache_hits for report in reports)
    )
    for key in COUNTER_KEYS:
        registry.counter(f"timing.{key}").inc(
            sum(report.counters.get(key, 0) for report in reports)
        )
    registry.gauge("timing.wall_seconds").set(
        sum(report.compile_seconds for report in reports)
    )


def explain_table(reports: "list[SpecializationReport] | None" = None) -> str:
    """The ``riscasim --timing-engine specialized --explain`` table."""
    reports = specialization_reports() if reports is None else reports
    if not reports:
        return ("specialized timing engine: no programs specialized "
                "in this process")
    lines = [
        f"specialized timing engine: {len(reports)} specialization(s), "
        f"{sum(r.compile_seconds for r in reports) * 1e3:.1f} ms codegen, "
        f"{sum(r.source_cache_hits for r in reports)} cache hit(s)",
        f"  {'program':<10} {'config':<10} {'mode':<5} {'instr':>6} "
        f"{'lines':>6} {'ms':>6} {'hits':>5}  optimizations",
    ]
    for report in reports:
        opts = ", ".join(
            f"{key.replace('_', ' ')} {report.counters[key]}"
            for key in COUNTER_KEYS if report.counters.get(key)
        ) or "none"
        lines.append(
            f"  {report.digest[:8]:<10} {report.config_name:<10} "
            f"{report.mode:<5} {report.instructions:>6} "
            f"{report.source_lines:>6} "
            f"{report.compile_seconds * 1e3:>6.1f} "
            f"{report.source_cache_hits:>5}  {opts}"
        )
    return "\n".join(lines)


def _publish(type: str, data: dict) -> None:
    """Ledger event on the process's active bus, if one is installed."""
    from repro.obs.events import publish_event

    publish_event("timing", type, data)


def _static_fingerprint(static, n: int) -> int:
    """Hash of the static metadata the generator bakes into code.

    Synthetic traces may pair a program digest with *different* static
    arrays (e.g. register-remapped interleavings), so the digest alone is
    not a safe cache key for generated schedulers.
    """
    return hash((
        tuple(static.klass[:n]),
        tuple(static.dest[:n]),
        tuple(map(tuple, static.srcs[:n])),
        tuple(map(tuple, static.addr_srcs[:n])),
        tuple(static.is_branch[:n]),
        tuple(static.is_cond_branch[:n]),
        tuple(static.mem_size[:n]),
        tuple(static.sbox_table[:n]),
        tuple(static.sbox_aliased[:n]),
    ))


def specialized_scheduler(ir: TimingIR, static, config: MachineConfig):
    """The generated fast-path function for this (program, config) pair.

    Returns ``(function or None, report or None)``; ``None`` when the
    program has no blocks to specialize (empty program).
    """
    n = ir.n_instructions
    if not ir.blocks:
        return None, None
    key = (ir.program.digest(), _static_fingerprint(static, n), config)
    cached = _CODE_CACHE.get(key)
    if cached is not None:
        report = _REPORTS.get(key)
        if report is not None:
            report.source_cache_hits += 1
        _publish("specialize-cache-hit", {
            "digest": key[0][:12], "config": config.name,
        })
        return cached, report
    began = time.perf_counter()
    _SERIAL[0] += 1
    slug = re.sub(r"\W", "_", config.name)
    func_name = f"_timing_{key[0][:8]}_{slug}_{_SERIAL[0]}"
    source, counters, namespace = _generate(ir, static, config, func_name)
    filename = f"<repro-timing:{key[0][:8]}:{config.name}:{_SERIAL[0]}>"
    linecache.cache[filename] = (
        len(source), None, source.splitlines(True), filename,
    )
    exec(compile(source, filename, "exec"), namespace)
    fn = namespace[func_name]
    _CODE_CACHE[key] = fn
    report = _REPORTS[key] = SpecializationReport(
        digest=key[0],
        config_name=config.name,
        attributed=config.issue_width is not None,
        instructions=n,
        blocks=len(ir.blocks),
        source_lines=source.count("\n"),
        compile_seconds=time.perf_counter() - began,
        counters=counters,
    )
    _publish("specialize", {
        "digest": key[0][:12],
        "config": config.name,
        "mode": report.mode,
        "instructions": n,
        "blocks": report.blocks,
        "source_lines": report.source_lines,
        "seconds": round(report.compile_seconds, 6),
        **{k: counters.get(k, 0) for k in COUNTER_KEYS},
    })
    return fn, report


def _pow2(value: int) -> "int | None":
    if value > 0 and value & (value - 1) == 0:
        return value.bit_length() - 1
    return None


def _div(expr: str, by: int) -> str:
    shift = _pow2(by)
    return f"({expr} >> {shift})" if shift is not None else f"({expr} // {by})"


def _mod(expr: str, by: int) -> str:
    if by == 1:
        return "0"
    shift = _pow2(by)
    return f"({expr} & {by - 1})" if shift is not None else f"({expr} % {by})"


def _generate(ir: TimingIR, static, config: MachineConfig, func_name: str):
    """Emit the fast-path source for one (program, config) pair."""
    counters = {key: 0 for key in COUNTER_KEYS}

    def count(key: str, by: int = 1) -> None:
        counters[key] += by

    lines: list[str] = []

    def limit(value):
        return _UNLIMITED if value is None else value

    issue_width = limit(config.issue_width)
    num_ialu = limit(config.num_ialu)
    num_rot = limit(config.num_rotator)
    mul_slots = limit(config.mul_slots)
    dports = limit(config.dcache_ports)
    retire_width = limit(config.retire_width)
    sbox_ports = limit(config.sbox_cache_ports)
    track_issue = issue_width != _UNLIMITED
    attribute = track_issue
    window = config.window_size
    fetch_width = config.fetch_width
    track_fgu = config.fetch_groups_per_cycle > 1
    perfect_memory = config.perfect_memory
    perfect_alias = config.perfect_alias
    has_predictor = not config.perfect_branch_prediction
    sbox_caches = config.sbox_caches
    lsq = config.lsq_size

    # ---- scan the blocks for which machinery the code needs ---------------
    used_regs: set[int] = set()
    used_sports: set[int] = set()
    uses_hier = uses_sync = uses_pred = False
    uses_dport = uses_ialu = uses_rot = uses_mul = False
    uses_store = uses_fwd = uses_sbmiss = False
    for block in ir.blocks:
        for s in range(block.leader, block.leader + block.length):
            k = static.klass[s]
            used_regs.update(static.srcs[s])
            used_regs.update(static.addr_srcs[s])
            if static.dest[s] >= 0:
                used_regs.add(static.dest[s])
            if k == "load":
                uses_fwd = True
                if not perfect_memory:
                    uses_hier = True
                uses_dport = True
            elif k == "store":
                uses_store = True
                if not perfect_memory:
                    uses_hier = True
                uses_dport = True
            elif k == "sbox":
                if static.sbox_aliased[s]:
                    uses_fwd = True
                    if not perfect_memory:
                        uses_hier = True
                    uses_dport = True
                elif sbox_caches and static.sbox_table[s] < sbox_caches:
                    used_sports.add(static.sbox_table[s] % sbox_caches)
                    uses_sbmiss = True
                else:
                    if not perfect_memory:
                        uses_hier = True
                    uses_dport = True
            elif k == "sync":
                uses_sync = True
            elif k == "ialu":
                uses_ialu = True
            elif k == "rotator":
                uses_rot = True
            elif k in ("mul32", "mul64", "mulmod"):
                uses_mul = True
            if (static.is_branch[s] and static.is_cond_branch[s]
                    and has_predictor):
                uses_pred = True
    uses_dport = uses_dport and dports != _UNLIMITED
    uses_ialu = uses_ialu and num_ialu != _UNLIMITED
    uses_rot = uses_rot and num_rot != _UNLIMITED
    uses_mul = uses_mul and mul_slots != _UNLIMITED
    use_sports = bool(used_sports) and sbox_ports != _UNLIMITED

    def w(indent: int, text: str = "") -> None:
        lines.append("    " * indent + text if text else "")

    # ---- prelude: pin carried state into locals ---------------------------
    w(0, f"def {func_name}(self, seq, addrs, base_pos, lo, hi, next_s):")
    w(1, "fe = self.frontend")
    w(1, "fc = fe.fetch_cycle")
    w(1, "fsu = fe.fetch_slots_used")
    if track_fgu:
        w(1, "fgu = fe.fetch_groups_used")
    w(1, "mpu = fe.mispredict_until")
    w(1, "sch = self.scheduler")
    if track_issue:
        w(1, "iu = sch.issue_used")
        w(1, "iug = iu.get")
    if uses_ialu:
        w(1, "au = sch.ialu_used")
        w(1, "aug = au.get")
    if uses_rot:
        w(1, "ru = sch.rot_used")
        w(1, "rug = ru.get")
    if uses_mul:
        w(1, "mu = sch.mul_used")
        w(1, "mug = mu.get")
    if uses_dport:
        w(1, "du = sch.dport_used")
        w(1, "dug = du.get")
    if use_sports:
        for port in sorted(used_sports):
            w(1, f"sp{port} = sch.sport_used[{port}]")
            w(1, f"spg{port} = sp{port}.get")
    if window:
        w(1, "ring = sch.retire_ring")
    w(1, "rr = sch.reg_ready")
    for reg in sorted(used_regs):
        w(1, f"g{reg} = rr[{reg}]")
    w(1, "rp = sch.retire_prev")
    if retire_width != _UNLIMITED:
        w(1, "rcount = sch.retire_count")
    w(1, "maxc = sch.max_complete")
    w(1, "pm = sch.prune_mark")
    w(1, "mo = self.memorder")
    if not perfect_alias and (uses_store or uses_fwd):
        w(1, "lsk = mo.last_store_addr_known")
    if uses_sync or any(
        static.klass[s] == "sbox" and not static.sbox_aliased[s]
        for b in ir.blocks for s in range(b.leader, b.leader + b.length)
    ):
        w(1, "syncb = mo.sync_barrier")
    if uses_store or uses_fwd:
        w(1, "sm = mo.store_map")
        w(1, "smg = sm.get")
        w(1, "sc = mo.store_count")
    if uses_hier:
        w(1, "H = mo.hierarchy")
        w(1, "HACC = H.access")
        w(1, "LSETS = H.l1.sets")
        w(1, "TSETS = H.tlb.cache.sets")
        w(1, "l1h = 0")
        w(1, "tlbh = 0")
    if use_sports or uses_sync:
        w(1, "sba = mo.sbox_array")
    if use_sports:
        for port in sorted(used_sports):
            w(1, f"sb{port} = sba.caches[{port}]")
    if uses_sync:
        w(1, "sbsync = sba.sync if sba is not None else None")
    if uses_pred:
        w(1, "pred = fe.predictor")
        w(1, "pt = pred.table")
        w(1, "plk = 0")
        w(1, "pmi = 0")
    if attribute:
        w(1, "att = self.attribution")
        w(1, "raa = self._ra.append")
        w(1, "fr = att.frontier")
        w(1, "hot = att.hot")
        w(1, "bexec = self._block_execs")
        w(1, "bumps = []")
        w(1, "ba = bumps.append")
        # Pin one wait row per static instruction.  Creating a row that
        # this call never touches is harmless: all-zero rows are skipped
        # by the hotspot table and cannot displace a non-zero row.
        for s in sorted({
            s for b in ir.blocks
            for s in range(b.leader, b.leader + b.length)
        }):
            w(1, f"row{s} = hot.get({s})")
            w(1, f"if row{s} is None:")
            w(2, f"row{s} = hot[{s}] = [0] * {_N_WAIT}")
    else:
        count("attribution_elided", ir.n_instructions)
    w(1, "st = self.stats")
    w(1, "d_br = 0")
    w(1, "d_ld = 0")
    w(1, "d_st = 0")
    w(1, "d_sb = 0")
    w(1, "d_sf = 0")
    w(1, "d_mp = 0")
    if uses_sbmiss:
        w(1, "d_sbm = 0")
    w(1, "seq_len = len(seq)")
    w(1, "j = lo")
    w(1, "while j < hi:")
    w(2, "s = seq[j]")

    # ---- shared emission helpers ------------------------------------------
    def emit_issue(ind: int, rq_expr: str, fu) -> None:
        """Inline issue_at: ``fu`` is None or (getter, dict, limit, cost,
        category).

        Emitted as a straight-line common case (free slot and free unit at
        the request cycle) with the bump loop in a rarely-taken branch.
        A unit pool with ``cost == 1`` and ``limit >= issue_width`` can
        never be the binding constraint -- the pool's per-cycle use is
        bounded by the issue count, which the (earlier) issue check keeps
        below the pool limit -- so its checks *and* bookkeeping are elided
        outright.
        """
        w(ind, f"c = {rq_expr}")
        if fu is not None and fu[2] == _UNLIMITED:
            fu = None
        if (fu is not None and track_issue and fu[3] == 1
                and fu[2] >= issue_width):
            count("fu_checks_elided")
            fu = None
        if track_issue and fu is not None:
            getter, dname, fu_limit, cost, cat = fu
            w(ind, "u = iug(c, 0)")
            w(ind, f"fv = {getter}(c, 0)")
            if cost == 1:
                w(ind, f"if u >= {issue_width} or fv >= {fu_limit}:")
            else:
                w(ind, f"if u >= {issue_width} or fv + {cost} > {fu_limit}:")
            if attribute:
                w(ind + 1, "del bumps[:]")
            w(ind + 1, "while 1:")
            w(ind + 2, f"if u >= {issue_width}:")
            if attribute:
                w(ind + 3, "ba(6)")
            w(ind + 2, f"elif fv + {cost} > {fu_limit}:")
            if attribute:
                w(ind + 3, f"ba({cat})")
            w(ind + 2, "else:")
            w(ind + 3, "break")
            w(ind + 2, "c += 1")
            w(ind + 2, "u = iug(c, 0)")
            w(ind + 2, f"fv = {getter}(c, 0)")
            w(ind, "iu[c] = u + 1")
            w(ind, f"{dname}[c] = fv + {cost}")
        elif track_issue:
            w(ind, "u = iug(c, 0)")
            w(ind, f"if u >= {issue_width}:")
            if attribute:
                w(ind + 1, "del bumps[:]")
            w(ind + 1, "while 1:")
            if attribute:
                w(ind + 2, "ba(6)")
            w(ind + 2, "c += 1")
            w(ind + 2, "u = iug(c, 0)")
            w(ind + 2, f"if u < {issue_width}:")
            w(ind + 3, "break")
            w(ind, "iu[c] = u + 1")
        elif fu is not None:
            getter, dname, fu_limit, cost, cat = fu
            w(ind, f"fv = {getter}(c, 0)")
            if cost == 1:
                w(ind, f"while fv >= {fu_limit}:")
            else:
                w(ind, f"while fv + {cost} > {fu_limit}:")
            w(ind + 1, "c += 1")
            w(ind + 1, f"fv = {getter}(c, 0)")
            w(ind, f"{dname}[c] = fv + {cost}")
        else:
            count("issue_checks_elided")

    def emit_hier(ind: int, addr_expr: str, is_store: bool) -> None:
        """Inline the hierarchy's all-hit path; delegate otherwise.

        The probe phase (``in`` tests) mutates nothing, so on any miss the
        delegated ``MemoryHierarchy.access`` call replays the full access
        against untouched state; on the all-hit path the commit applies
        exactly the LRU reorders and hit counts ``access`` would.
        """
        count("memory_fast_paths")
        blk = config.l1_block
        l1_ns = config.l1_size // (config.l1_assoc * config.l1_block)
        tlb_ns = config.tlb_entries // config.tlb_assoc
        w(ind, f"ab = {_div(addr_expr, blk)}")
        w(ind, f"ls = LSETS[{_mod('ab', l1_ns)}]")
        w(ind, f"pg = {_div(addr_expr, config.page_size)}")
        w(ind, f"ts = TSETS[{_mod('pg', tlb_ns)}]")
        w(ind, "if pg in ts and ab in ls and "
               f"ab + 1 in LSETS[{_mod('(ab + 1)', l1_ns)}]:")
        w(ind + 1, "if ts[-1] != pg:")
        w(ind + 2, "ts.remove(pg)")
        w(ind + 2, "ts.append(pg)")
        w(ind + 1, "tlbh += 1")
        w(ind + 1, "if ls[-1] != ab:")
        w(ind + 2, "ls.remove(ab)")
        w(ind + 2, "ls.append(ab)")
        w(ind + 1, "l1h += 1")
        if not is_store:
            w(ind + 1, "ex = 0")
        w(ind, "else:")
        if is_store:
            w(ind + 1, f"HACC({addr_expr}, True)")
        else:
            w(ind + 1, f"ex = HACC({addr_expr})")

    def emit_forward(ind: int, addr_expr: str, size: int) -> None:
        """Unrolled store-map probe: latest live overlapping store."""
        count("forward_probes_unrolled", size)
        w(ind, f"bo = sc - {lsq}")
        w(ind, "fwd = 0")
        for byte in range(size):
            expr = addr_expr if byte == 0 else f"{addr_expr} + {byte}"
            w(ind, f"f = smg({expr})")
            w(ind, "if f is not None and f[0] > bo:")
            w(ind + 1, "bo = f[0]")
            w(ind + 1, "fwd = f[1]")

    def emit_attr(ind: int, s: int, oe_expr: str, rq_expr: str,
                  has_alias: bool) -> None:
        if not attribute:
            return
        # Machine view: label cycles [frontier, issued), appending to the
        # frontier-ordered label list.  The chain tests the upper (common)
        # ranges first; ``bumps`` is guaranteed fresh in its arm because
        # reaching it implies c > request, i.e. this instruction took the
        # contended-issue path which cleared and refilled the list.
        w(ind, "if c > fr:")
        w(ind + 1, "while fr < c:")
        w(ind + 2, f"if fr >= {rq_expr}:")
        w(ind + 3, f"raa(bumps[fr - {rq_expr}])")
        if has_alias:
            w(ind + 2, f"elif fr >= {oe_expr}:")
            w(ind + 3, "raa(5)")
        w(ind + 2, "elif fr >= df:")
        w(ind + 3, "raa(4)")
        w(ind + 2, "elif fr >= en:")
        w(ind + 3, "raa(3)")
        w(ind + 2, "elif fr >= fc:")
        w(ind + 3, "raa(2)")
        w(ind + 2, "elif fr >= mpu:")
        w(ind + 3, "raa(0)")
        w(ind + 2, "else:")
        w(ind + 3, "raa(1)")
        w(ind + 2, "fr += 1")
        # Instruction view: this instruction's wait cycles by category
        # (the pinned row only; wait_totals is folded from the rows at
        # finish).  The bump fold is gated on c != request -- when the
        # issue loop never bumped, ``bumps`` holds a previous
        # instruction's (already consumed) entries.
        w(ind, "if c != en:")
        w(ind + 1, "t = df - en")
        w(ind + 1, "if t:")
        w(ind + 2, f"row{s}[0] += t")
        w(ind + 1, f"t = {oe_expr} - df")
        w(ind + 1, "if t:")
        w(ind + 2, f"row{s}[1] += t")
        if has_alias:
            w(ind + 1, f"t = {rq_expr} - {oe_expr}")
            w(ind + 1, "if t:")
            w(ind + 2, f"row{s}[2] += t")
        w(ind + 1, f"if c != {rq_expr}:")
        w(ind + 2, "for t in bumps:")
        w(ind + 3, f"row{s}[t - 3] += 1")

    first = True
    expects: dict[str, object] = {}
    for block in ir.blocks:
        lead = block.leader
        length = block.length
        cond = "if" if first else "elif"
        first = False
        w(2, f"{cond} s == {lead}:")
        if length > 1:
            name = f"_EX{block.index}"
            expects[name] = array(
                SEQ_TYPECODE, range(lead, lead + length))
            w(3, f"if j + {length} > hi or seq[j:j + {length}] != {name}:")
            w(4, "break")
        w(3, "pos = base_pos + j")
        count("blocks_unrolled")

        n_loads = n_stores = n_sbox = 0
        for i in range(length):
            s = lead + i
            k = static.klass[s]
            count("latencies_folded")
            pos_expr = "pos" if i == 0 else f"(pos + {i})"
            addr_expr = "addrs[j]" if i == 0 else f"addrs[j + {i}]"
            w(3, f"# [{s}] {k}")

            # ---- fetch ---------------------------------------------------
            # ``fc`` doubles as this instruction's fetch cycle (the chain
            # below reads it before any branch redirect can change it).
            # ``fgu`` writes are elided when fetch_groups_per_cycle == 1:
            # the only reader is the multi-group taken-branch arm.
            if fetch_width is not None:
                w(3, f"if fsu >= {fetch_width}:")
                w(4, "fc += 1")
                w(4, "fsu = 1")
                if track_fgu:
                    w(4, "fgu = 0")
                w(3, "else:")
                w(4, "fsu += 1")

            # ---- dispatch / operands -------------------------------------
            depth = config.frontend_depth
            w(3, f"en = fc + {depth}" if depth else "en = fc")
            if window:
                w(3, f"wx = {_mod(pos_expr, window)}")
                w(3, "e = ring[wx]")
                w(3, "if e < en:")
                w(4, "e = en")
            else:
                w(3, "e = en")
            w(3, "df = e")
            for reg in static.srcs[s]:
                w(3, f"t = g{reg}")
                w(3, "if t > e:")
                w(4, "e = t")

            # ---- issue + execute per class -------------------------------
            fu_ialu = ("aug", "au", num_ialu, 1, 7) if uses_ialu else None
            fu_rot = ("rug", "ru", num_rot, 1, 8) if uses_rot else None
            fu_dport = ("dug", "du", dports, 1, 10) if uses_dport else None
            if k == "ialu":
                emit_issue(3, "e", fu_ialu)
                w(3, f"cm = c + {config.alu_latency}")
                emit_attr(3, s, "e", "e", False)
            elif k == "rotator":
                emit_issue(3, "e", fu_rot)
                w(3, f"cm = c + {config.rotator_latency}")
                emit_attr(3, s, "e", "e", False)
            elif k == "mul32":
                fu = (("mug", "mu", mul_slots, config.mul32_cost, 9)
                      if uses_mul else None)
                emit_issue(3, "e", fu)
                w(3, f"cm = c + {config.mul32_latency}")
                emit_attr(3, s, "e", "e", False)
            elif k == "mul64":
                fu = (("mug", "mu", mul_slots, config.mul64_cost, 9)
                      if uses_mul else None)
                emit_issue(3, "e", fu)
                w(3, f"cm = c + {config.mul64_latency}")
                emit_attr(3, s, "e", "e", False)
            elif k == "mulmod":
                fu = (("mug", "mu", mul_slots, config.mulmod_cost, 9)
                      if uses_mul else None)
                emit_issue(3, "e", fu)
                w(3, f"cm = c + {config.mulmod_latency}")
                emit_attr(3, s, "e", "e", False)
            elif k == "load":
                n_loads += 1
                w(3, "oe = e + 1")
                if perfect_alias:
                    w(3, "ar = oe")
                else:
                    w(3, "ar = oe if oe > lsk else lsk")
                w(3, f"a = {addr_expr}")
                emit_forward(3, "a", static.mem_size[s])
                w(3, "if fwd:")
                w(4, "rq = ar if ar > fwd else fwd")
                emit_issue(4, "rq", None)
                w(4, "cm = c + 1")
                w(4, "d_sf += 1")
                w(3, "else:")
                w(4, "rq = ar")
                emit_issue(4, "rq", fu_dport)
                if perfect_memory:
                    w(4, f"cm = c + {config.load_latency - 1}")
                else:
                    emit_hier(4, "a", False)
                    w(4, f"cm = c + ex + {config.load_latency - 1}")
                emit_attr(3, s, "oe", "rq", True)
            elif k == "store":
                n_stores += 1
                w(3, "ak = df")
                for reg in static.addr_srcs[s]:
                    w(3, f"t = g{reg}")
                    w(3, "if t > ak:")
                    w(4, "ak = t")
                w(3, "ak += 1")
                w(3, "rq = e if e > ak else ak")
                emit_issue(3, "rq", fu_dport)
                w(3, f"a = {addr_expr}")
                if not perfect_memory:
                    emit_hier(3, "a", True)
                w(3, f"cm = c + {config.store_latency}")
                if not perfect_alias:
                    w(3, "if ak > lsk:")
                    w(4, "lsk = ak")
                w(3, "sc += 1")
                w(3, "f = (sc, cm)")
                for byte in range(static.mem_size[s]):
                    expr = "a" if byte == 0 else f"a + {byte}"
                    w(3, f"sm[{expr}] = f")
                emit_attr(3, s, "rq", "rq", False)
            elif k == "sbox":
                n_sbox += 1
                w(3, f"a = {addr_expr}")
                if static.sbox_aliased[s]:
                    if perfect_alias:
                        w(3, "ar = e")
                    else:
                        w(3, "ar = e if e > lsk else lsk")
                    emit_forward(3, "a", 4)
                    w(3, "if fwd:")
                    w(4, "rq = ar if ar > fwd else fwd")
                    emit_issue(4, "rq", None)
                    w(4, "cm = c + 1")
                    w(4, "d_sf += 1")
                    w(3, "else:")
                    w(4, "rq = ar")
                    emit_issue(4, "rq", fu_dport)
                    if perfect_memory:
                        w(4, f"cm = c + {config.sbox_dcache_latency}")
                    else:
                        emit_hier(4, "a", False)
                        w(4, f"cm = c + ex + {config.sbox_dcache_latency}")
                    emit_attr(3, s, "e", "rq", True)
                elif (sbox_caches
                      and static.sbox_table[s] < sbox_caches):
                    port = static.sbox_table[s] % sbox_caches
                    w(3, "rq = e if e > syncb else syncb")
                    fu = ((f"spg{port}", f"sp{port}", sbox_ports, 1, 11)
                          if use_sports else None)
                    emit_issue(3, "rq", fu)
                    hit_lat = config.sbox_cache_latency
                    miss_lat = hit_lat + config.sbox_dcache_latency
                    w(3, "t = a & -1024")
                    w(3, f"if sb{port}.tag == t:")
                    w(4, f"v = sb{port}.valid")
                    w(4, "u = (a >> 5) & 31")
                    w(4, "if v[u]:")
                    w(5, f"sb{port}.hits += 1")
                    w(5, f"cm = c + {hit_lat}")
                    w(4, "else:")
                    w(5, "v[u] = True")
                    w(5, f"sb{port}.misses += 1")
                    w(5, "d_sbm += 1")
                    w(5, f"cm = c + {miss_lat}")
                    w(3, "else:")
                    w(4, f"if sb{port}.access(a):")
                    w(5, f"cm = c + {hit_lat}")
                    w(4, "else:")
                    w(5, "d_sbm += 1")
                    w(5, f"cm = c + {miss_lat}")
                    emit_attr(3, s, "e", "rq", True)
                else:
                    w(3, "rq = e if e > syncb else syncb")
                    emit_issue(3, "rq", fu_dport)
                    if perfect_memory:
                        w(3, f"cm = c + {config.sbox_dcache_latency}")
                    else:
                        emit_hier(3, "a", False)
                        w(3, f"cm = c + ex + {config.sbox_dcache_latency}")
                    emit_attr(3, s, "e", "rq", True)
            elif k == "sync":
                emit_issue(3, "e", None)
                w(3, "cm = c + 1")
                w(3, "if sbsync is not None:")
                w(4, f"sbsync({static.sbox_table[s]})")
                w(3, "syncb = cm")
                emit_attr(3, s, "e", "e", False)
            else:
                emit_issue(3, "e", None)
                w(3, f"cm = c + {config.alu_latency}")
                emit_attr(3, s, "e", "e", False)

            # ---- branch resolution / fetch redirect ----------------------
            if static.is_branch[s]:
                nextc = s + 1
                is_cond = static.is_cond_branch[s]
                mispredictable = has_predictor and is_cond
                breaks = (config.fetch_break_on_taken
                          and fetch_width is not None)
                need_taken = mispredictable or breaks
                if need_taken:
                    count("branch_lookaheads_inlined")
                    w(3, f"jn = j + {length}")
                    w(3, "if jn < seq_len:")
                    w(4, f"tk = seq[jn] != {nextc}")
                    w(3, "elif next_s is None:")
                    w(4, "tk = True")
                    w(3, "else:")
                    w(4, f"tk = next_s != {nextc}")
                if mispredictable:
                    slot = s % config.predictor_entries
                    w(3, f"ct = pt[{slot}]")
                    w(3, "if tk:")
                    w(4, "if ct < 3:")
                    w(5, f"pt[{slot}] = ct + 1")
                    w(3, "elif ct > 0:")
                    w(4, f"pt[{slot}] = ct - 1")
                    w(3, "plk += 1")
                    w(3, "if (ct >= 2) != tk:")
                    w(4, "pmi += 1")
                    w(4, "d_mp += 1")
                    w(4, f"t = cm + {config.mispredict_penalty}")
                    w(4, "if t > fc:")
                    w(5, "fc = t")
                    w(5, "fsu = 0")
                    if track_fgu:
                        w(5, "fgu = 0")
                    w(5, "if t > mpu:")
                    w(6, "mpu = t")
                    if breaks:
                        w(3, "elif tk:")
                elif breaks:
                    w(3, "if tk:")
                if breaks:
                    gpc = config.fetch_groups_per_cycle
                    if gpc == 1:
                        w(4, "fc += 1")
                        w(4, "fsu = 0")
                    else:
                        w(4, "fgu += 1")
                        w(4, f"if fgu >= {gpc}:")
                        w(5, "fc += 1")
                        w(5, "fsu = 0")
                        w(5, "fgu = 0")

            # ---- writeback / retire --------------------------------------
            dst = static.dest[s]
            if dst >= 0:
                w(3, f"g{dst} = cm")
            w(3, "if cm > maxc:")
            w(4, "maxc = cm")
            w(3, "r = cm + 1")
            w(3, "if r < rp:")
            w(4, "r = rp")
            if retire_width != _UNLIMITED:
                w(3, "if r == rp:")
                w(4, f"if rcount >= {retire_width}:")
                w(5, "r += 1")
                w(5, "rp = r")
                w(5, "rcount = 1")
                w(4, "else:")
                w(5, "rcount += 1")
                w(3, "else:")
                w(4, "rp = r")
                w(4, "rcount = 1")
            else:
                w(3, "rp = r")
            if window:
                w(3, "ring[wx] = r")

        # ---- per-block bookkeeping ---------------------------------------
        if attribute:
            w(3, f"bexec[{block.index}] += 1")
        if block.branch_end:
            w(3, "d_br += 1")
        if n_loads:
            w(3, f"d_ld += {n_loads}")
        if n_stores:
            w(3, f"d_st += {n_stores}")
        if n_sbox:
            w(3, f"d_sb += {n_sbox}")
        w(3, f"j += {length}")
        last_expr = "pos" if length == 1 else f"pos + {length - 1}"
        w(3, f"if {last_expr} - pm >= {config.prune_interval}:")
        w(4, f"pm = {last_expr}")
        w(4, "t = df if df < rp else rp")
        if attribute:
            w(4, "att.frontier = fr")
        w(4, f"self._prune_maps(t - 8192, "
             f"{'sc' if (uses_store or uses_fwd) else '0'})")
    w(2, "else:")
    w(3, "break")

    # ---- epilogue: write carried state back -------------------------------
    w(1, "fe.fetch_cycle = fc")
    w(1, "fe.fetch_slots_used = fsu")
    if track_fgu:
        w(1, "fe.fetch_groups_used = fgu")
    w(1, "fe.mispredict_until = mpu")
    for reg in sorted(used_regs):
        w(1, f"rr[{reg}] = g{reg}")
    w(1, "sch.retire_prev = rp")
    if retire_width != _UNLIMITED:
        w(1, "sch.retire_count = rcount")
    w(1, "sch.max_complete = maxc")
    w(1, "sch.prune_mark = pm")
    if not perfect_alias and (uses_store or uses_fwd):
        w(1, "mo.last_store_addr_known = lsk")
    if uses_sync or any(
        static.klass[s] == "sbox" and not static.sbox_aliased[s]
        for b in ir.blocks for s in range(b.leader, b.leader + b.length)
    ):
        w(1, "mo.sync_barrier = syncb")
    if uses_store or uses_fwd:
        w(1, "mo.store_count = sc")
    if uses_hier:
        w(1, "if l1h:")
        w(2, "H.l1.hits += l1h")
        w(1, "if tlbh:")
        w(2, "H.tlb.cache.hits += tlbh")
    if uses_pred:
        w(1, "if plk:")
        w(2, "pred.lookups += plk")
        w(1, "if pmi:")
        w(2, "pred.mispredictions += pmi")
    if attribute:
        w(1, "att.frontier = fr")
    w(1, "if d_br:")
    w(2, "st.branches += d_br")
    w(1, "if d_ld:")
    w(2, "st.loads += d_ld")
    w(1, "if d_st:")
    w(2, "st.stores += d_st")
    w(1, "if d_sb:")
    w(2, "st.sbox_accesses += d_sb")
    w(1, "if d_sf:")
    w(2, "st.store_forwards += d_sf")
    w(1, "if d_mp:")
    w(2, "st.mispredictions += d_mp")
    if uses_sbmiss:
        w(1, "if d_sbm:")
        w(2, "st.sbox_cache_misses += d_sbm")
    w(1, "return j")
    w(0, "")

    source = "\n".join(lines)
    return source, counters, dict(expects)


class SpecializedPipeline(PipelineBase):
    """Block-specialized pipeline: generated fast path + interpreter tail.

    ``_advance`` hands each trace window to the generated scheduler, which
    consumes whole matched blocks; whenever the window stops matching (a
    chunk boundary mid-block, a synthetic trace, a static index outside
    the program) one entry is stepped through :meth:`_slow` -- a per-entry
    port of the generic loop over the same state representations (byte
    store map, scalar retire frontier) -- and the fast path resumes.
    Chunks with explicit ``taken`` flags go entirely through ``_slow``.
    """

    engine_name = "specialized"

    def __init__(
        self,
        config: MachineConfig,
        static,
        program,
        warm_ranges=None,
        schedule_range=None,
    ):
        if schedule_range is not None:
            raise ValueError(
                "SpecializedPipeline does not capture schedules; "
                "SpecializedEngine.make_pipeline falls back to the generic "
                "engine when schedule_range is given"
            )
        super().__init__(config, static, program, warm_ranges=warm_ranges)
        self._ir = timing_ir(static, program)
        self._fast, self.report = specialized_scheduler(
            self._ir, static, config
        )
        self._block_execs = [0] * len(self._ir.blocks)
        # Machine-view stall labels: the attribution frontier advances
        # monotonically and labels each cycle exactly once, so the
        # ``reason_at`` dict becomes an append-only list where index
        # ``cycle - _ra_base`` holds the label for ``cycle``.
        self._ra: list[int] = []
        self._ra_base = 0

    def _advance(self, seq, addrs, taken_arr, base_pos, lo, hi, next_s):
        fast = self._fast
        if taken_arr is not None or fast is None:
            self._slow(seq, addrs, taken_arr, base_pos, lo, hi, next_s)
            self._count += hi - lo
            return
        j = lo
        while j < hi:
            j = fast(self, seq, addrs, base_pos, j, hi, next_s)
            if j >= hi:
                break
            # The window at j matches no block: interpret one entry.
            self._slow(seq, addrs, None, base_pos, j, j + 1, next_s)
            j += 1
        self._count += hi - lo

    def _finalize_engine(self):
        if not self._attribute:
            return
        # Fold the fast path's per-block execution tallies into the
        # per-instruction counts the hotspot table reads.
        exec_counts = self.attribution.exec_counts
        for block, count in zip(self._ir.blocks, self._block_execs):
            if count:
                for s in range(block.leader, block.leader + block.length):
                    exec_counts[s] += count
        self._block_execs = [0] * len(self._ir.blocks)
        # Neither path updates wait_totals incrementally; it is exactly
        # the column sums of the per-instruction wait rows (the generic
        # engine adds identical deltas to both in lockstep).
        wait_totals = self.attribution.wait_totals
        for row in self.attribution.hot.values():
            for index in range(_N_WAIT):
                wait_totals[index] += row[index]

    def _flush_attribution(self, until: int) -> None:
        """List-indexed flush: labels live at ``cycle - _ra_base``.

        Identical account to the base dict flush; cycles past the last
        appended label are retirement drain, and consumed labels are
        trimmed off the front of the list.  Flushed ``issue_used``
        entries are popped as they are read -- no future instruction can
        issue below the flush horizon, so this doubles as the trim for
        that map (:meth:`_prune_maps` skips it accordingly).
        """
        attribution = self.attribution
        labels = self._ra
        base = self._ra_base
        issue_width = self._issue_width
        pop_used = self.scheduler.issue_used.pop
        stall_slots = attribution.stall_slots
        flushed = attribution.flushed_until
        split = min(until, base + len(labels))
        if split < flushed:
            split = flushed
        cycle = flushed
        for cat in labels[flushed - base:split - base]:
            stall_slots[cat] += issue_width - pop_used(cycle, 0)
            cycle += 1
        for cycle in range(split, until):
            stall_slots[_C_DRAIN] += issue_width - pop_used(cycle, 0)
        attribution.flushed_until = until
        if until > base:
            del labels[:until - base]
            self._ra_base = until

    def _prune_maps(self, horizon: int, store_count: int) -> None:
        """Fold finalized cycles and drop dead map entries.

        Identical in effect to the generic engine's inline prune (stats
        are invariant to *when* pruning happens); mutates the resource
        dicts in place so the generated code's pinned references stay
        valid.  Also prunes the store byte map, whose generic counterpart
        (the capacity-capped ``recent_stores`` list) never grows.
        """
        scheduler = self.scheduler
        if (self._attribute
                and horizon > self.attribution.flushed_until):
            self._flush_attribution(horizon)
        trim_mark = scheduler.trim_mark
        if horizon > trim_mark:
            span = horizon - trim_mark
            # issue_used is not listed: the attribution flush above pops
            # its entries as it reads them (and without attribution the
            # map is never populated).
            for counters in (scheduler.ialu_used,
                             scheduler.rot_used, scheduler.mul_used,
                             scheduler.dport_used, *scheduler.sport_used):
                if not counters:
                    continue
                if len(counters) * 4 > span:
                    pop = counters.pop
                    for cycle in range(trim_mark, horizon):
                        pop(cycle, None)
                else:
                    for cycle in [c for c in counters if c < horizon]:
                        del counters[cycle]
            scheduler.trim_mark = horizon
        store_map = self.memorder.store_map
        lsq_size = self.config.lsq_size
        if len(store_map) > 16 * lsq_size:
            cutoff = store_count - lsq_size
            for address in [a for a, entry in store_map.items()
                            if entry[0] <= cutoff]:
                del store_map[address]

    def _slow(self, seq, addrs, taken_arr, base_pos, lo, hi, next_s):
        """Per-entry interpreter over this engine's state representations.

        A direct port of ``GenericPipeline._advance`` with the store queue
        read/written as the byte map and retirement as the scalar
        frontier; used for single-entry repairs between fast-path runs and
        for whole windows the fast path cannot take.  Does not bump
        ``self._count`` (the ``_advance`` driver does, once per window).
        """
        config = self.config
        static = self.static
        stats = self.stats
        frontend = self.frontend
        scheduler = self.scheduler
        memorder = self.memorder
        attribution = self.attribution

        klass = static.klass
        dest = static.dest
        srcs = static.srcs
        addr_srcs = static.addr_srcs
        is_branch = static.is_branch
        is_cond = static.is_cond_branch
        mem_size = static.mem_size
        sbox_table = static.sbox_table
        sbox_aliased = static.sbox_aliased

        predictor = frontend.predictor
        hierarchy = memorder.hierarchy
        sbox_array = memorder.sbox_array

        issue_used = scheduler.issue_used
        ialu_used = scheduler.ialu_used
        rot_used = scheduler.rot_used
        mul_used = scheduler.mul_used
        dport_used = scheduler.dport_used
        sport_used = scheduler.sport_used
        _no_fu = scheduler.no_fu
        reg_ready = scheduler.reg_ready
        retire_ring = scheduler.retire_ring
        retire_prev = scheduler.retire_prev
        retire_count = scheduler.retire_count
        max_complete = scheduler.max_complete
        prune_mark = scheduler.prune_mark

        issue_width = self._issue_width
        num_ialu = self._num_ialu
        num_rot = self._num_rot
        mul_slots = self._mul_slots
        dports = self._dports
        retire_width = self._retire_width
        sbox_ports = self._sbox_ports
        track_issue = self._track_issue
        attribute = self._attribute
        if track_issue:
            # A cost-1 pool at least as wide as issue can never be the
            # binding constraint (per-cycle pool use <= issue use, which
            # the issue check keeps below the pool limit), so skip its
            # checks and bookkeeping -- same elision as the fast path.
            if num_ialu >= issue_width:
                num_ialu = _UNLIMITED
            if num_rot >= issue_width:
                num_rot = _UNLIMITED
            if dports >= issue_width:
                dports = _UNLIMITED
            if sbox_ports >= issue_width:
                sbox_ports = _UNLIMITED
        window = config.window_size
        frontend_depth = config.frontend_depth
        alu_lat = config.alu_latency
        rot_lat = config.rotator_latency
        load_lat = config.load_latency
        store_lat = config.store_latency
        perfect_alias = config.perfect_alias
        lsq_size = config.lsq_size
        prune_interval = config.prune_interval

        fetch_cycle = frontend.fetch_cycle
        fetch_slots_used = frontend.fetch_slots_used
        fetch_groups_used = frontend.fetch_groups_used
        mispredict_until = frontend.mispredict_until
        fetch_width = config.fetch_width
        groups_per_cycle = config.fetch_groups_per_cycle
        break_on_taken = config.fetch_break_on_taken

        last_store_addr_known = memorder.last_store_addr_known
        store_map = memorder.store_map
        store_map_get = store_map.get
        store_count = memorder.store_count
        sync_barrier = memorder.sync_barrier

        bumps: list[int] = []
        if attribute:
            label_append = self._ra.append
            frontier = attribution.frontier
            hot = attribution.hot
            exec_counts = attribution.exec_counts
        else:
            frontier = 0

        def issue_at(cycle: int, fu_used: dict, fu_limit: int,
                     cost: int = 1, fu_cat: int = _C_ISSUE) -> int:
            if attribute:
                bumps.clear()
            while True:
                if track_issue and issue_used.get(cycle, 0) >= issue_width:
                    if attribute:
                        bumps.append(_C_ISSUE)
                    cycle += 1
                    continue
                if (fu_limit != _UNLIMITED
                        and fu_used.get(cycle, 0) + cost > fu_limit):
                    if attribute:
                        bumps.append(fu_cat)
                    cycle += 1
                    continue
                break
            if track_issue:
                issue_used[cycle] = issue_used.get(cycle, 0) + 1
            if fu_limit != _UNLIMITED:
                fu_used[cycle] = fu_used.get(cycle, 0) + cost
            return cycle

        seq_len = len(seq)

        for j in range(lo, hi):
            pos = base_pos + j
            s = seq[j]
            k = klass[s]

            # ---- fetch ----------------------------------------------------
            this_fetch = fetch_cycle
            if fetch_width is not None:
                if fetch_slots_used >= fetch_width:
                    fetch_cycle += 1
                    fetch_slots_used = 0
                    fetch_groups_used = 0
                    this_fetch = fetch_cycle
                fetch_slots_used += 1

            # ---- dispatch / operands --------------------------------------
            enter = this_fetch + frontend_depth
            earliest = enter
            if window:
                freed = retire_ring[pos % window]
                if freed > earliest:
                    earliest = freed
            dispatch_floor = earliest
            for r in srcs[s]:
                t = reg_ready[r]
                if t > earliest:
                    earliest = t

            # ---- issue + execute ------------------------------------------
            if k == "ialu":
                operand_end = request = earliest
                issued = issue_at(request, ialu_used, num_ialu,
                                  fu_cat=_C_FU_IALU)
                complete = issued + alu_lat
            elif k == "rotator":
                operand_end = request = earliest
                issued = issue_at(request, rot_used, num_rot,
                                  fu_cat=_C_FU_ROT)
                complete = issued + rot_lat
            elif k == "load":
                addr_ready = earliest + 1
                operand_end = addr_ready
                if not perfect_alias and last_store_addr_known > addr_ready:
                    addr_ready = last_store_addr_known
                addr = addrs[j]
                size = mem_size[s]
                # Latest live overlapping store, via the byte map: the
                # entry with the greatest store order wins, exactly as the
                # generic engine's newest-first interval scan does.
                barrier_order = store_count - lsq_size
                forward = 0
                for byte in range(addr, addr + size):
                    entry = store_map_get(byte)
                    if entry is not None and entry[0] > barrier_order:
                        barrier_order = entry[0]
                        forward = entry[1]
                if forward:
                    request = max(addr_ready, forward)
                    issued = issue_at(request, _no_fu, _UNLIMITED)
                    complete = issued + 1
                    stats.store_forwards += 1
                else:
                    request = addr_ready
                    issued = issue_at(request, dport_used, dports,
                                      fu_cat=_C_FU_MEM)
                    extra = 0
                    if hierarchy is not None:
                        extra = hierarchy.access(addr)
                    complete = issued + (load_lat - 1) + extra
                stats.loads += 1
            elif k == "store":
                addr_known = dispatch_floor
                for r in addr_srcs[s]:
                    t = reg_ready[r]
                    if t > addr_known:
                        addr_known = t
                addr_known += 1
                operand_end = request = max(earliest, addr_known)
                issued = issue_at(request, dport_used, dports,
                                  fu_cat=_C_FU_MEM)
                addr = addrs[j]
                if hierarchy is not None:
                    hierarchy.access(addr, is_store=True)
                complete = issued + store_lat
                if not perfect_alias and addr_known > last_store_addr_known:
                    last_store_addr_known = addr_known
                store_count += 1
                entry = (store_count, complete)
                for byte in range(addr, addr + mem_size[s]):
                    store_map[byte] = entry
                stats.stores += 1
            elif k == "sbox":
                aliased = sbox_aliased[s]
                addr = addrs[j]
                stats.sbox_accesses += 1
                operand_end = earliest
                access_ready = earliest
                if (aliased and not perfect_alias
                        and last_store_addr_known > access_ready):
                    access_ready = last_store_addr_known
                if not aliased and sync_barrier > access_ready:
                    access_ready = sync_barrier
                forward = 0
                if aliased:
                    barrier_order = store_count - lsq_size
                    for byte in range(addr, addr + 4):
                        entry = store_map_get(byte)
                        if entry is not None and entry[0] > barrier_order:
                            barrier_order = entry[0]
                            forward = entry[1]
                if forward:
                    request = max(access_ready, forward)
                    issued = issue_at(request, _no_fu, _UNLIMITED)
                    complete = issued + 1
                    stats.store_forwards += 1
                elif (sbox_array is not None and not aliased
                      and sbox_table[s] < sbox_array.count):
                    table = sbox_table[s]
                    port = table % sbox_array.count
                    request = access_ready
                    issued = issue_at(request, sport_used[port], sbox_ports,
                                      fu_cat=_C_FU_SBOX)
                    if sbox_array.access(table, addr):
                        complete = issued + config.sbox_cache_latency
                    else:
                        stats.sbox_cache_misses += 1
                        complete = (issued + config.sbox_cache_latency
                                    + config.sbox_dcache_latency)
                else:
                    request = access_ready
                    issued = issue_at(request, dport_used, dports,
                                      fu_cat=_C_FU_MEM)
                    extra = 0
                    if hierarchy is not None:
                        extra = hierarchy.access(addr)
                    complete = issued + config.sbox_dcache_latency + extra
            elif k == "mul32":
                operand_end = request = earliest
                issued = issue_at(request, mul_used, mul_slots,
                                  config.mul32_cost, fu_cat=_C_FU_MUL)
                complete = issued + config.mul32_latency
            elif k == "mul64":
                operand_end = request = earliest
                issued = issue_at(request, mul_used, mul_slots,
                                  config.mul64_cost, fu_cat=_C_FU_MUL)
                complete = issued + config.mul64_latency
            elif k == "mulmod":
                operand_end = request = earliest
                issued = issue_at(request, mul_used, mul_slots,
                                  config.mulmod_cost, fu_cat=_C_FU_MUL)
                complete = issued + config.mulmod_latency
            elif k == "sync":
                operand_end = request = earliest
                issued = issue_at(request, _no_fu, _UNLIMITED)
                complete = issued + 1
                if sbox_array is not None:
                    sbox_array.sync(sbox_table[s])
                sync_barrier = complete
            else:
                operand_end = request = earliest
                issued = issue_at(request, _no_fu, _UNLIMITED)
                complete = issued + alu_lat

            # ---- stall attribution ----------------------------------------
            if attribute:
                exec_counts[s] += 1
                if issued > frontier:
                    for cycle in range(frontier, issued):
                        if cycle < this_fetch:
                            cat = (_C_MISPREDICT if cycle < mispredict_until
                                   else _C_FETCH)
                        elif cycle < enter:
                            cat = _C_FRONTEND
                        elif cycle < dispatch_floor:
                            cat = _C_WINDOW
                        elif cycle < operand_end:
                            cat = _C_OPERAND
                        elif cycle < request:
                            cat = _C_ALIAS
                        else:
                            cat = bumps[cycle - request]
                        label_append(cat)
                    frontier = issued
                window_wait = dispatch_floor - enter
                operand_wait = operand_end - dispatch_floor
                alias_wait = request - operand_end
                if window_wait or operand_wait or alias_wait or bumps:
                    row = hot.get(s)
                    if row is None:
                        row = hot[s] = [0] * _N_WAIT
                    row[_C_WINDOW - _C_WINDOW] += window_wait
                    row[_C_OPERAND - _C_WINDOW] += operand_wait
                    row[_C_ALIAS - _C_WINDOW] += alias_wait
                    for cat in bumps:
                        row[cat - _C_WINDOW] += 1

            # ---- branch resolution / fetch redirect -----------------------
            if is_branch[s]:
                if taken_arr is not None:
                    taken = bool(taken_arr[j])
                else:
                    jn = j + 1
                    if jn < seq_len:
                        taken = seq[jn] != s + 1
                    elif next_s is None:
                        taken = True
                    else:
                        taken = next_s != s + 1
                stats.branches += 1
                correct = True
                if predictor is not None and is_cond[s]:
                    correct = predictor.predict_and_update(s, taken)
                if not correct:
                    stats.mispredictions += 1
                    redirect = complete + config.mispredict_penalty
                    if redirect > fetch_cycle:
                        fetch_cycle = redirect
                        fetch_slots_used = 0
                        fetch_groups_used = 0
                        if redirect > mispredict_until:
                            mispredict_until = redirect
                elif taken and break_on_taken and fetch_width is not None:
                    fetch_groups_used += 1
                    if fetch_groups_used >= groups_per_cycle:
                        fetch_cycle += 1
                        fetch_slots_used = 0
                        fetch_groups_used = 0

            # ---- writeback / retire ---------------------------------------
            d = dest[s]
            if d >= 0:
                reg_ready[d] = complete
            if complete > max_complete:
                max_complete = complete

            r = complete + 1
            if r < retire_prev:
                r = retire_prev
            if retire_width != _UNLIMITED:
                # Scalar form of the per-cycle retire map: only the
                # frontier cycle can fill (see SchedulerState docstring).
                if r == retire_prev:
                    if retire_count >= retire_width:
                        r += 1
                        retire_prev = r
                        retire_count = 1
                    else:
                        retire_count += 1
                else:
                    retire_prev = r
                    retire_count = 1
            else:
                retire_prev = r
            if window:
                retire_ring[pos % window] = r

            # ---- prune resource maps --------------------------------------
            if pos - prune_mark >= prune_interval:
                prune_mark = pos
                if attribute:
                    attribution.frontier = frontier
                self._prune_maps(
                    min(dispatch_floor, retire_prev) - 8192, store_count
                )

        # ---- write carried scalar state back ------------------------------
        frontend.fetch_cycle = fetch_cycle
        frontend.fetch_slots_used = fetch_slots_used
        frontend.fetch_groups_used = fetch_groups_used
        frontend.mispredict_until = mispredict_until
        scheduler.retire_prev = retire_prev
        scheduler.retire_count = retire_count
        scheduler.max_complete = max_complete
        scheduler.prune_mark = prune_mark
        memorder.last_store_addr_known = last_store_addr_known
        memorder.store_count = store_count
        memorder.sync_barrier = sync_barrier
        if attribute:
            attribution.frontier = frontier


class SpecializedEngine:
    """Engine wrapper: specialized pipelines, generic for schedule views.

    Schedule capture (``--view``) wants per-entry `(pos, s, dispatch,
    issue, complete, retire)` tuples, which the block fast path deliberately
    does not materialize, so those runs go to the generic engine.
    """

    name = "specialized"

    def make_pipeline(
        self,
        config,
        static,
        program,
        *,
        warm_ranges=None,
        schedule_range=None,
    ):
        if schedule_range is not None:
            from repro.sim.timing.generic import GenericPipeline

            return GenericPipeline(
                config, static, program,
                warm_ranges=warm_ranges, schedule_range=schedule_range,
            )
        return SpecializedPipeline(
            config, static, program, warm_ranges=warm_ranges,
        )
