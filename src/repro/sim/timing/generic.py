"""The ``"generic"`` timing engine: one interpreter loop for any program.

This is the reference implementation of the timing model -- a single flat
loop over trace entries that re-examines every instruction's class,
sources and latencies per dynamic instance.  It handles every machine
configuration and every trace shape (including synthetic chunks with
explicit ``taken`` flags), and its output defines correctness for every
other engine: the ``"specialized"`` engine must match it bit for bit
(``tests/sim/test_timing_engines.py`` is the oracle).
"""

from __future__ import annotations

from repro.sim.timing.stages import (
    _C_ALIAS,
    _C_FETCH,
    _C_FRONTEND,
    _C_FU_IALU,
    _C_FU_MEM,
    _C_FU_MUL,
    _C_FU_ROT,
    _C_FU_SBOX,
    _C_ISSUE,
    _C_MISPREDICT,
    _C_OPERAND,
    _C_WINDOW,
    _N_WAIT,
    _UNLIMITED,
    PipelineBase,
)


class GenericPipeline(PipelineBase):
    """Per-entry interpreter over the stage components."""

    engine_name = "generic"

    def _advance(
        self,
        seq,
        addrs,
        taken_arr,
        base_pos: int,
        lo: int,
        hi: int,
        next_s,
    ) -> None:
        """Process trace entries ``seq[lo:hi]``.

        ``base_pos`` is the global trace position of ``seq[0]``.
        ``taken_arr`` carries explicit branch outcomes when present;
        otherwise outcomes are inferred from the following entry --
        ``seq[j + 1]`` in-bounds, else ``next_s`` (the first entry of the
        next chunk), else taken (``next_s is None`` = end of trace).

        The body is one flat loop over the entries with all carried state
        rebound to locals on entry and scalar state written back on exit --
        the dict/list state is mutated in place.  This keeps the streaming
        path within noise of the old monolithic pass.
        """
        config = self.config
        static = self.static
        stats = self.stats
        frontend = self.frontend
        scheduler = self.scheduler
        memorder = self.memorder
        attribution = self.attribution

        klass = static.klass
        dest = static.dest
        srcs = static.srcs
        addr_srcs = static.addr_srcs
        is_branch = static.is_branch
        is_cond = static.is_cond_branch
        mem_size = static.mem_size
        sbox_table = static.sbox_table
        sbox_aliased = static.sbox_aliased

        predictor = frontend.predictor
        hierarchy = memorder.hierarchy
        sbox_array = memorder.sbox_array

        issue_used = scheduler.issue_used
        ialu_used = scheduler.ialu_used
        rot_used = scheduler.rot_used
        mul_used = scheduler.mul_used
        dport_used = scheduler.dport_used
        sport_used = scheduler.sport_used
        retire_used = scheduler.retire_used
        _no_fu = scheduler.no_fu
        reg_ready = scheduler.reg_ready
        retire_ring = scheduler.retire_ring
        retire_prev = scheduler.retire_prev
        max_complete = scheduler.max_complete
        prune_mark = scheduler.prune_mark
        trim_mark = scheduler.trim_mark

        issue_width = self._issue_width
        num_ialu = self._num_ialu
        num_rot = self._num_rot
        mul_slots = self._mul_slots
        dports = self._dports
        retire_width = self._retire_width
        sbox_ports = self._sbox_ports
        track_issue = self._track_issue
        attribute = self._attribute
        window = config.window_size
        frontend_depth = config.frontend_depth
        alu_lat = config.alu_latency
        rot_lat = config.rotator_latency
        load_lat = config.load_latency
        store_lat = config.store_latency
        perfect_alias = config.perfect_alias
        lsq_size = config.lsq_size
        prune_interval = config.prune_interval

        fetch_cycle = frontend.fetch_cycle
        fetch_slots_used = frontend.fetch_slots_used
        fetch_groups_used = frontend.fetch_groups_used
        mispredict_until = frontend.mispredict_until
        fetch_width = config.fetch_width
        groups_per_cycle = config.fetch_groups_per_cycle
        break_on_taken = config.fetch_break_on_taken

        last_store_addr_known = memorder.last_store_addr_known
        recent_stores = memorder.recent_stores
        sync_barrier = memorder.sync_barrier

        bumps: list[int] = []
        if attribute:
            reason_at = attribution.reason_at
            wait_totals = attribution.wait_totals
            frontier = attribution.frontier
            hot = attribution.hot
            exec_counts = attribution.exec_counts
        else:
            frontier = 0

        def issue_at(cycle: int, fu_used: dict, fu_limit: int,
                     cost: int = 1, fu_cat: int = _C_ISSUE) -> int:
            """First cycle >= ``cycle`` with an issue slot and FU room."""
            if attribute:
                bumps.clear()
            while True:
                if track_issue and issue_used.get(cycle, 0) >= issue_width:
                    if attribute:
                        bumps.append(_C_ISSUE)
                    cycle += 1
                    continue
                if (fu_limit != _UNLIMITED
                        and fu_used.get(cycle, 0) + cost > fu_limit):
                    if attribute:
                        bumps.append(fu_cat)
                    cycle += 1
                    continue
                break
            if track_issue:
                issue_used[cycle] = issue_used.get(cycle, 0) + 1
            if fu_limit != _UNLIMITED:
                fu_used[cycle] = fu_used.get(cycle, 0) + cost
            return cycle

        schedule = self._schedule
        sched_start = self._sched_start
        sched_end = self._sched_end
        seq_len = len(seq)

        for j in range(lo, hi):
            pos = base_pos + j
            s = seq[j]
            k = klass[s]

            # ---- fetch ----------------------------------------------------
            this_fetch = fetch_cycle
            if fetch_width is not None:
                if fetch_slots_used >= fetch_width:
                    fetch_cycle += 1
                    fetch_slots_used = 0
                    fetch_groups_used = 0
                    this_fetch = fetch_cycle
                fetch_slots_used += 1

            # ---- dispatch / operands --------------------------------------
            enter = this_fetch + frontend_depth
            earliest = enter
            if window:
                freed = retire_ring[pos % window]
                if freed > earliest:
                    earliest = freed
            dispatch_floor = earliest
            for r in srcs[s]:
                t = reg_ready[r]
                if t > earliest:
                    earliest = t

            # ---- issue + execute ------------------------------------------
            # ``operand_end`` / ``request`` bound the attribution segments:
            # [dispatch_floor, operand_end) is operand wait (incl. address
            # generation), [operand_end, request) is memory-ordering/alias
            # stall, [request, issued) is issue/FU contention per ``bumps``.
            if k == "ialu":
                operand_end = request = earliest
                issued = issue_at(request, ialu_used, num_ialu,
                                  fu_cat=_C_FU_IALU)
                complete = issued + alu_lat
            elif k == "rotator":
                operand_end = request = earliest
                issued = issue_at(request, rot_used, num_rot,
                                  fu_cat=_C_FU_ROT)
                complete = issued + rot_lat
            elif k == "load":
                # Address generation, then ordered cache access.
                addr_ready = earliest + 1
                operand_end = addr_ready
                if not perfect_alias and last_store_addr_known > addr_ready:
                    addr_ready = last_store_addr_known
                addr = addrs[j]
                size = mem_size[s]
                forward = 0
                for start, end, data_ready in reversed(recent_stores):
                    if addr < end and start < addr + size:
                        forward = data_ready
                        break
                if forward:
                    request = max(addr_ready, forward)
                    issued = issue_at(request, _no_fu, _UNLIMITED)
                    complete = issued + 1
                    stats.store_forwards += 1
                else:
                    request = addr_ready
                    issued = issue_at(request, dport_used, dports,
                                      fu_cat=_C_FU_MEM)
                    extra = 0
                    if hierarchy is not None:
                        extra = hierarchy.access(addr)
                    complete = issued + (load_lat - 1) + extra
                stats.loads += 1
            elif k == "store":
                # The address resolves when the base register is ready.
                addr_known = dispatch_floor
                for r in addr_srcs[s]:
                    t = reg_ready[r]
                    if t > addr_known:
                        addr_known = t
                addr_known += 1
                operand_end = request = max(earliest, addr_known)
                issued = issue_at(request, dport_used, dports,
                                  fu_cat=_C_FU_MEM)
                addr = addrs[j]
                if hierarchy is not None:
                    hierarchy.access(addr, is_store=True)
                complete = issued + store_lat
                if not perfect_alias and addr_known > last_store_addr_known:
                    last_store_addr_known = addr_known
                recent_stores.append((addr, addr + mem_size[s], complete))
                if len(recent_stores) > lsq_size:
                    recent_stores.pop(0)
                stats.stores += 1
            elif k == "sbox":
                aliased = sbox_aliased[s]
                addr = addrs[j]
                stats.sbox_accesses += 1
                operand_end = earliest
                access_ready = earliest
                if (aliased and not perfect_alias
                        and last_store_addr_known > access_ready):
                    access_ready = last_store_addr_known
                if not aliased and sync_barrier > access_ready:
                    access_ready = sync_barrier
                forward = 0
                if aliased:
                    for start, end, data_ready in reversed(recent_stores):
                        if addr < end and start < addr + 4:
                            forward = data_ready
                            break
                if forward:
                    request = max(access_ready, forward)
                    issued = issue_at(request, _no_fu, _UNLIMITED)
                    complete = issued + 1
                    stats.store_forwards += 1
                elif (sbox_array is not None and not aliased
                      and sbox_table[s] < sbox_array.count):
                    # The table designator schedules this access onto a
                    # dedicated SBox cache; ids beyond the cache count (e.g.
                    # 3DES's eight logical tables) deliberately stay on the
                    # d-cache path so a single-tag sector cache is not
                    # thrashed between tables.
                    table = sbox_table[s]
                    port = table % sbox_array.count
                    request = access_ready
                    issued = issue_at(request, sport_used[port], sbox_ports,
                                      fu_cat=_C_FU_SBOX)
                    if sbox_array.access(table, addr):
                        complete = issued + config.sbox_cache_latency
                    else:
                        stats.sbox_cache_misses += 1
                        complete = (issued + config.sbox_cache_latency
                                    + config.sbox_dcache_latency)
                else:
                    request = access_ready
                    issued = issue_at(request, dport_used, dports,
                                      fu_cat=_C_FU_MEM)
                    extra = 0
                    if hierarchy is not None:
                        extra = hierarchy.access(addr)
                    complete = issued + config.sbox_dcache_latency + extra
            elif k == "mul32":
                operand_end = request = earliest
                issued = issue_at(request, mul_used, mul_slots,
                                  config.mul32_cost, fu_cat=_C_FU_MUL)
                complete = issued + config.mul32_latency
            elif k == "mul64":
                operand_end = request = earliest
                issued = issue_at(request, mul_used, mul_slots,
                                  config.mul64_cost, fu_cat=_C_FU_MUL)
                complete = issued + config.mul64_latency
            elif k == "mulmod":
                operand_end = request = earliest
                issued = issue_at(request, mul_used, mul_slots,
                                  config.mulmod_cost, fu_cat=_C_FU_MUL)
                complete = issued + config.mulmod_latency
            elif k == "sync":
                operand_end = request = earliest
                issued = issue_at(request, _no_fu, _UNLIMITED)
                complete = issued + 1
                if sbox_array is not None:
                    sbox_array.sync(sbox_table[s])
                sync_barrier = complete
            else:
                operand_end = request = earliest
                issued = issue_at(request, _no_fu, _UNLIMITED)
                complete = issued + alu_lat

            # ---- stall attribution ----------------------------------------
            if attribute:
                exec_counts[s] += 1
                # Machine view: label every cycle up to this issue with the
                # category blocking the oldest unissued instruction (cycles
                # below ``frontier`` were labeled by older instructions).
                if issued > frontier:
                    for cycle in range(frontier, issued):
                        if cycle < this_fetch:
                            cat = (_C_MISPREDICT if cycle < mispredict_until
                                   else _C_FETCH)
                        elif cycle < enter:
                            cat = _C_FRONTEND
                        elif cycle < dispatch_floor:
                            cat = _C_WINDOW
                        elif cycle < operand_end:
                            cat = _C_OPERAND
                        elif cycle < request:
                            cat = _C_ALIAS
                        else:
                            cat = bumps[cycle - request]
                        reason_at[cycle] = cat
                    frontier = issued
                # Instruction view: cycles *this* instruction spent blocked.
                window_wait = dispatch_floor - enter
                operand_wait = operand_end - dispatch_floor
                alias_wait = request - operand_end
                if window_wait or operand_wait or alias_wait or bumps:
                    row = hot.get(s)
                    if row is None:
                        row = hot[s] = [0] * _N_WAIT
                    row[_C_WINDOW - _C_WINDOW] += window_wait
                    row[_C_OPERAND - _C_WINDOW] += operand_wait
                    row[_C_ALIAS - _C_WINDOW] += alias_wait
                    wait_totals[0] += window_wait
                    wait_totals[1] += operand_wait
                    wait_totals[2] += alias_wait
                    for cat in bumps:
                        row[cat - _C_WINDOW] += 1
                        wait_totals[cat - _C_WINDOW] += 1

            # ---- branch resolution / fetch redirect -----------------------
            if is_branch[s]:
                if taken_arr is not None:
                    taken = bool(taken_arr[j])
                else:
                    jn = j + 1
                    if jn < seq_len:
                        taken = seq[jn] != s + 1
                    elif next_s is None:
                        taken = True
                    else:
                        taken = next_s != s + 1
                stats.branches += 1
                correct = True
                if predictor is not None and is_cond[s]:
                    correct = predictor.predict_and_update(s, taken)
                if not correct:
                    stats.mispredictions += 1
                    redirect = complete + config.mispredict_penalty
                    if redirect > fetch_cycle:
                        fetch_cycle = redirect
                        fetch_slots_used = 0
                        fetch_groups_used = 0
                        if redirect > mispredict_until:
                            mispredict_until = redirect
                elif taken and break_on_taken and fetch_width is not None:
                    fetch_groups_used += 1
                    if fetch_groups_used >= groups_per_cycle:
                        fetch_cycle += 1
                        fetch_slots_used = 0
                        fetch_groups_used = 0

            # ---- writeback / retire ---------------------------------------
            d = dest[s]
            if d >= 0:
                reg_ready[d] = complete
            if complete > max_complete:
                max_complete = complete

            r = complete + 1
            if r < retire_prev:
                r = retire_prev
            if retire_width != _UNLIMITED:
                while retire_used.get(r, 0) >= retire_width:
                    r += 1
                retire_used[r] = retire_used.get(r, 0) + 1
            retire_prev = r
            if window:
                retire_ring[pos % window] = r
            if schedule is not None and sched_start <= pos < sched_end:
                # dispatch_floor = window entry (fetch throttled by ROB
                # space), the honest "F" column for visualization.
                schedule.append((pos, s, dispatch_floor, issued, complete, r))

            # ---- prune resource maps --------------------------------------
            if pos - prune_mark >= prune_interval:
                prune_mark = pos
                # ``dispatch_floor`` is monotone in ``pos`` (fetch cycles
                # and in-order retirement both only move forward) and every
                # resource probe of every later instruction starts at or
                # above it, so cycles below it are final.  ``retire_prev``
                # guards the retirement map the same way.
                horizon = min(dispatch_floor, retire_prev) - 8192
                # Slot attribution for cycles below the horizon is final (no
                # later instruction can issue there): fold it into the
                # totals before the usage counts are trimmed away.
                if attribute and horizon > attribution.flushed_until:
                    attribution.frontier = frontier
                    self._flush_attribution(horizon)
                if horizon > trim_mark:
                    span = horizon - trim_mark
                    for counters in (issue_used, ialu_used, rot_used,
                                     mul_used, dport_used, retire_used,
                                     *sport_used):
                        if not counters:
                            continue
                        if len(counters) * 4 > span:
                            # Dense map: walk the dead cycle range (cycles
                            # are monotone, so each is visited once ever).
                            pop = counters.pop
                            for cycle in range(trim_mark, horizon):
                                pop(cycle, None)
                        else:
                            # Sparse map: scanning its keys is cheaper than
                            # walking the range.
                            for cycle in [c for c in counters
                                          if c < horizon]:
                                del counters[cycle]
                    trim_mark = horizon

        # ---- write carried scalar state back to the stage components ------
        frontend.fetch_cycle = fetch_cycle
        frontend.fetch_slots_used = fetch_slots_used
        frontend.fetch_groups_used = fetch_groups_used
        frontend.mispredict_until = mispredict_until
        scheduler.retire_prev = retire_prev
        scheduler.max_complete = max_complete
        scheduler.prune_mark = prune_mark
        scheduler.trim_mark = trim_mark
        memorder.last_store_addr_known = last_store_addr_known
        memorder.sync_barrier = sync_barrier
        if attribute:
            attribution.frontier = frontier
        self._count += hi - lo


class GenericEngine:
    """Engine wrapper: builds :class:`GenericPipeline` instances."""

    name = "generic"

    def make_pipeline(
        self,
        config,
        static,
        program,
        *,
        warm_ranges=None,
        schedule_range=None,
    ) -> GenericPipeline:
        return GenericPipeline(
            config, static, program,
            warm_ranges=warm_ranges, schedule_range=schedule_range,
        )
