"""Trace-driven out-of-order timing model, with pluggable engines.

One pass over a dynamic trace assigns every instruction a fetch, issue,
completion and retirement cycle subject to the configured machine's
constraints:

* **Fetch** proceeds in program order at ``fetch_width`` instructions per
  cycle; with ``fetch_break_on_taken``, at most ``fetch_groups_per_cycle``
  taken branches are crossed per cycle (the paper's "1 block/cycle").  A
  mispredicted branch redirects fetch to ``complete + mispredict_penalty``.
* **Dispatch** into the window requires a free slot: instruction *i* may not
  enter until instruction *i - window_size* has retired.
* **Issue** waits for source operands, an issue slot (``issue_width`` per
  cycle) and a functional unit *in the same cycle*: IALUs, rotator/XBOX
  units, multiplier slots (a 64-bit multiply costs ``mul64_cost`` slots),
  data-cache ports, or a per-table SBox-cache port.  Older instructions
  claim slots first because the pass runs in program order -- the same
  priority an age-ordered scheduler gives.
* **Stores** resolve their address one cycle after their base register is
  ready; **loads** obey memory ordering: unless ``perfect_alias``, a load's
  cache access may not start before every prior store's address is known
  (the paper's conservative baseline).  A load overlapping a recent store
  forwards from it.  Non-aliased SBOX instructions skip ordering entirely
  (paper section 5); the aliased form (RC4's) is treated as a load.
* **Completion** adds the operation latency (plus cache-hierarchy extra
  latency when the memory system is realistic).
* **Retirement** is in-order, ``retire_width`` per cycle.

This is the standard cycle-assignment formulation of an out-of-order
machine; DESIGN.md substitution #1 discusses fidelity versus the paper's
execution-driven simulator.  With every constraint disabled (the DF config)
the pass computes the pure dataflow critical path.

**Streaming.**  The pass is organized as a pipeline whose stage components
-- :class:`FrontendState`, :class:`SchedulerState`,
:class:`MemoryOrderState`, :class:`AttributionState` -- carry their state
across :class:`~repro.sim.trace.TraceChunk` boundaries.  The pipeline
consumes any :class:`~repro.sim.trace.TraceSource` (a materialized
:class:`~repro.sim.trace.Trace` or a live
:class:`~repro.sim.machine.StreamingTrace`) chunk by chunk and produces
**bit-identical** :class:`~repro.sim.stats.SimStats` regardless of chunk
size, because every per-instruction decision depends only on carried state
plus at most one entry of lookahead (branch outcomes are inferred from the
next trace entry; the pipeline defers the final entry of each chunk until
the next chunk's first entry arrives).  :func:`simulate` is the one-call
wrapper.  See ``docs/architecture.md`` and ``docs/timing.md``.

**Stall attribution.**  On machines with a finite ``issue_width`` the pass
additionally produces an exact cycle account -- the paper's SimpleView
bottleneck analysis as data.  Every one of the run's
``cycles * issue_width`` issue slots is either used by an instruction or
attributed to exactly one stall category
(:data:`repro.sim.stats.STALL_CATEGORIES`), by blaming each cycle's empty
slots on whatever blocked the *oldest unissued* instruction at that cycle
(the standard attribution discipline of sim-outorder-style accounting):
fetch starvation, misprediction recovery, frontend depth, a full window,
operand waits, memory-ordering/alias stalls, issue-port contention, or a
busy functional-unit pool.  Cycles after the last issue are the
retirement drain.  The invariant

    ``stats.instructions + sum(stats.stall_slots.values())
    == stats.cycles * issue_width == stats.issue_slots``

holds exactly and is enforced by property tests across the cipher suite.
A complementary *instruction view* (``stats.wait_cycles`` plus the
``stats.hotspots`` table) accumulates the cycles each static instruction
spent blocked per category, independent of machine width.

**Engines.**  The model ships as interchangeable *timing engines* behind
the :class:`TimingEngine` protocol, registered on the same
:class:`repro.sim.registry.Registry` helper the execution backends use:

* ``"generic"`` -- the reference per-entry interpreter
  (:mod:`repro.sim.timing.generic`); handles every config and trace shape.
* ``"specialized"`` -- per-(program, config) generated schedulers over the
  static timing IR (:mod:`repro.sim.timing.ir`,
  :mod:`repro.sim.timing.specialized`); bit-identical to ``"generic"``
  (``tests/sim/test_timing_engines.py``) and several times faster on the
  streaming path.

Engines differ only in how fast they advance the stage state; every
result above -- including the stall account -- is engine-invariant.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.isa.program import Program
from repro.sim.config import MachineConfig
from repro.sim.registry import Registry
from repro.sim.stats import SimStats
from repro.sim.timing.generic import GenericEngine, GenericPipeline
from repro.sim.timing.specialized import (
    SpecializedEngine,
    SpecializedPipeline,
)
from repro.sim.timing.stages import (
    AttributionState,
    FrontendState,
    MemoryOrderState,
    PipelineBase,
    SchedulerState,
    _hotspot_table,
    record_sim_metrics,
)
from repro.sim.trace import StaticInfo, TraceSource

#: Engine used when callers pass ``engine=None``.
DEFAULT_ENGINE = "generic"


@runtime_checkable
class TimingEngine(Protocol):
    """One implementation of the timing model.

    ``make_pipeline`` returns a fresh :class:`PipelineBase` subclass
    instance for one run.  Engines must produce bit-identical
    :class:`~repro.sim.stats.SimStats` to the ``"generic"`` reference for
    every machine config, trace and chunk partitioning (the equivalence
    suite in ``tests/sim/test_timing_engines.py`` is the oracle).
    """

    name: str

    def make_pipeline(
        self,
        config: MachineConfig,
        static: StaticInfo,
        program: Program,
        *,
        warm_ranges: "list[tuple[int, int]] | None" = None,
        schedule_range: "tuple[int, int] | None" = None,
    ) -> PipelineBase:  # pragma: no cover - protocol signature
        ...


#: The timing-engine registry; same helper (and error shape) as the
#: execution-backend registry in :mod:`repro.sim.backends`.
_REGISTRY: Registry[TimingEngine] = Registry(
    "timing engine", default=DEFAULT_ENGINE
)


def register_engine(engine: TimingEngine, *, replace: bool = False) -> None:
    """Register ``engine`` under ``engine.name``."""
    _REGISTRY.register(engine, replace=replace)


def engine_names() -> tuple[str, ...]:
    """Registered engine names, sorted (for CLI choices and error text)."""
    return _REGISTRY.names()


def get_engine(engine: "str | TimingEngine | None") -> TimingEngine:
    """Resolve an engine argument: None, a registered name, or an instance."""
    return _REGISTRY.get(engine)


register_engine(GenericEngine())
register_engine(SpecializedEngine())


def make_pipeline(
    config: MachineConfig,
    static: StaticInfo,
    program: Program,
    *,
    warm_ranges: "list[tuple[int, int]] | None" = None,
    schedule_range: "tuple[int, int] | None" = None,
    engine: "str | TimingEngine | None" = None,
) -> PipelineBase:
    """A fresh pipeline for one run, from the selected engine."""
    return get_engine(engine).make_pipeline(
        config, static, program,
        warm_ranges=warm_ranges, schedule_range=schedule_range,
    )


def simulate(
    trace: TraceSource,
    config: MachineConfig,
    warm_ranges: "list[tuple[int, int]] | None" = None,
    schedule_range: "tuple[int, int] | None" = None,
    metrics=None,
    chunk_size: "int | None" = None,
    engine: "str | TimingEngine | None" = None,
) -> SimStats:
    """Run the timing model over a trace source; returns cycle statistics.

    ``trace`` -- any :class:`~repro.sim.trace.TraceSource`: a materialized
    :class:`~repro.sim.trace.Trace` (the batch path; the default
    ``chunk_size=None`` consumes it as one zero-copy chunk) or a live
    :class:`~repro.sim.machine.StreamingTrace`, which interleaves
    functional execution with timing at bounded memory.

    ``warm_ranges`` -- list of ``(start, length)`` address ranges installed
    into the cache hierarchy before timing begins (the tables and key
    schedules the setup code just wrote; see ``MemoryHierarchy.warm``).

    ``schedule_range`` -- optional ``(start, end)`` trace-position window;
    per-instruction ``(position, static_index, fetch, issue, complete,
    retire)`` tuples for that window are returned in
    ``stats.extra["schedule"]`` (the pipeline-viewer hook).  Capture is
    bounded by ``config.max_schedule_entries``; a clipped window sets
    ``stats.extra["schedule_truncated"]``.

    ``metrics`` -- optional :class:`repro.obs.MetricsRegistry`; when given,
    the run's headline counters and stall-slot breakdown are recorded
    under ``sim.*`` metric names labeled by config.

    ``chunk_size`` -- entries per pipeline step; ``None`` lets the source
    pick (a ``Trace`` yields itself whole, a ``StreamingTrace`` uses its
    configured chunk size).  Results are bit-identical for every value.

    ``engine`` -- timing engine: ``None`` (the ``"generic"`` default), a
    registered name, or a :class:`TimingEngine` instance.  Results are
    bit-identical for every engine.
    """
    pipeline = make_pipeline(
        config, trace.static, trace.program,
        warm_ranges=warm_ranges, schedule_range=schedule_range,
        engine=engine,
    )
    for chunk in trace.chunks(chunk_size):
        pipeline.feed(chunk)
    stats = pipeline.finish()
    if metrics is not None and stats.instructions:
        record_sim_metrics(metrics, config, stats)
    return stats


__all__ = [
    "DEFAULT_ENGINE",
    "AttributionState",
    "FrontendState",
    "GenericEngine",
    "GenericPipeline",
    "MemoryOrderState",
    "PipelineBase",
    "SchedulerState",
    "SpecializedEngine",
    "SpecializedPipeline",
    "TimingEngine",
    "engine_names",
    "get_engine",
    "make_pipeline",
    "record_sim_metrics",
    "register_engine",
    "simulate",
    "_hotspot_table",
]
