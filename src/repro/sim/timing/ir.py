"""Static timing IR: per-program scheduling structure, computed once.

The generic engine re-derives everything about an instruction -- latency
class, functional-unit pool, source registers, branch-ness -- on every
dynamic instance.  The IR hoists that work to *program* scope: one pass
over the finalized :class:`~repro.isa.program.Program` splits it into
straight-line blocks (leaders at the entry point, every branch target and
every post-branch/post-HALT index, capped at :data:`MAX_BLOCK` entries so
generated code stays compact) and precomputes, per block, the exact
static-index run a trace must contain for the block to have executed
start to finish.

The ``"specialized"`` engine's code generator walks these blocks and
emits one unrolled scheduling body per block; at run time a single array
comparison against :attr:`TimingBlock.expect` proves a trace window *is*
that block, so the emitted body needs no per-entry dispatch at all.  The
IR itself is engine-neutral static metadata and is cached on the trace's
:class:`~repro.sim.trace.StaticInfo` (one per program, however many
traces and configs consume it).
"""

from __future__ import annotations

from array import array

from repro.isa.opcodes import HALT
from repro.isa.program import Program
from repro.sim.trace import SEQ_TYPECODE, StaticInfo

#: Longest block the code generator unrolls; longer straight-line runs are
#: split into consecutive sub-blocks (the follow-on sub-block is simply
#: another leader, so splitting never costs correctness, only one more
#: dispatch per MAX_BLOCK entries).
MAX_BLOCK = 64


class TimingBlock:
    """One straight-line run of static instructions."""

    __slots__ = ("index", "leader", "length", "expect", "branch_end",
                 "loop_depth")

    def __init__(self, index: int, leader: int, length: int,
                 branch_end: bool):
        self.index = index
        self.leader = leader
        self.length = length
        #: The dynamic static-index run this block produces when executed.
        self.expect = array(SEQ_TYPECODE, range(leader, leader + length))
        #: True when the final instruction is a branch (the block may be
        #: followed by any leader); False for fall-through splits and HALT.
        self.branch_end = branch_end
        #: Natural-loop nesting depth of the leader (0 = straight-line
        #: code), filled in by :class:`TimingIR` from the shared analysis
        #: framework's :class:`~repro.isa.analysis.passes.NaturalLoops`.
        self.loop_depth = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TimingBlock({self.index}: [{self.leader}.."
                f"{self.leader + self.length}), branch={self.branch_end})")


class TimingIR:
    """Block decomposition of one program, keyed by block leader."""

    __slots__ = ("program", "n_instructions", "blocks", "block_at")

    def __init__(self, static: StaticInfo, program: Program):
        self.program = program
        instructions = program.instructions
        n = self.n_instructions = len(instructions)
        is_branch = static.is_branch

        leaders = {0, n}
        for i, inst in enumerate(instructions):
            if i < len(is_branch) and is_branch[i]:
                leaders.add(i + 1)
                target = inst.target
                if isinstance(target, int) and 0 <= target < n:
                    leaders.add(target)
            elif inst.code == HALT:
                leaders.add(i + 1)

        self.blocks: list[TimingBlock] = []
        self.block_at: dict[int, TimingBlock] = {}
        ordered = sorted(leader for leader in leaders if leader < n)
        bounds = ordered + [n]
        for which, leader in enumerate(ordered):
            end = bounds[which + 1]
            start = leader
            while start < end:
                length = min(MAX_BLOCK, end - start)
                last = start + length - 1
                block = TimingBlock(
                    len(self.blocks), start, length,
                    branch_end=bool(start + length == end
                                    and last < len(is_branch)
                                    and is_branch[last]),
                )
                self.blocks.append(block)
                self.block_at[start] = block
                start += length

        # Loop structure rides along from the shared analysis framework
        # (natural loops over the verifier CFG's back edges).  Imported
        # lazily: the IR is hot-path sim code and must not pull the
        # analysis package in unless a program is actually decomposed.
        from repro.isa.analysis.passes import analyses_for

        loops = analyses_for(program).loops
        for block in self.blocks:
            block.loop_depth = loops.depth_of_index(block.leader)


def timing_ir(static: StaticInfo, program: Program) -> TimingIR:
    """The program's timing IR, computed once and cached on ``static``.

    ``StaticInfo`` is built once per program (``StaticInfo.from_program``)
    and shared by every trace of it, so caching here gives the desired
    once-per-program cost without a separate global table.
    """
    ir = getattr(static, "_timing_ir", None)
    if ir is None or ir.program is not program:
        ir = TimingIR(static, program)
        static._timing_ir = ir
    return ir
