"""Functional RISC-A simulator.

Executes a finalized program against a :class:`~repro.sim.memory.Memory`,
optionally recording the compact dynamic trace the timing models consume.
The interpreter is a single dispatch loop over precompiled per-instruction
field arrays -- the fastest portable shape for a pure-Python ISA interpreter.

Architectural notes (see ``repro.isa.opcodes`` for the full list):
* registers hold unsigned 64-bit values; ``r31`` reads as zero (writes to it
  are compiled to a shadow slot),
* 32-bit results (``ADDL`` family, ``ROLL``, ``ROLXL``, SBOX loads, ``LDL``)
  are zero-extended,
* SBOXSYNC is a timing-only instruction: the functional model reads S-box
  tables from live memory, which is equivalent because kernels only store to
  a non-aliased S-box region before the matching SBOXSYNC (RC4's in-kernel
  stores use the aliased SBOX form).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Iterator

from repro.isa import opcodes as op
from repro.isa.program import Program
from repro.sim.memory import Memory
from repro.sim.trace import (
    ADDR_TYPECODE,
    DEFAULT_CHUNK_SIZE,
    SEQ_TYPECODE,
    VALUE_TYPECODE,
    StaticInfo,
    Trace,
    TraceChunk,
)

M32 = 0xFFFFFFFF
M64 = 0xFFFFFFFFFFFFFFFF

_ZAPNOT_MASKS = [
    sum(0xFF << (8 * bit) for bit in range(8) if mask & (1 << bit))
    for mask in range(256)
]


class SimulationError(RuntimeError):
    """Raised when execution fails (bad memory access, runaway program)."""


@dataclass
class RunResult:
    instructions: int
    trace: Trace | None


class Machine:
    """Functional executor for one program instance."""

    def __init__(self, program: Program, memory: Memory):
        if not program.finalized:
            raise ValueError("program must be finalized")
        self.program = program
        self.memory = memory
        self.regs = [0] * 33  # slot 32 swallows writes to r31
        #: One-shot guard: execution mutates registers and memory in place.
        self._used = False
        self.halted = False
        self.instructions_executed = 0
        self._compile()

    def _compile(self) -> None:
        """Flatten instruction fields into parallel arrays for the hot loop."""
        instructions = self.program.instructions
        n = len(instructions)
        self.code = [0] * n
        self.dest = [32] * n
        self.src1 = [31] * n
        self.src2 = [31] * n
        self.lit = [None] * n
        self.disp = [0] * n
        self.target = [0] * n
        self.tbl = [0] * n
        self.bsel = [0] * n
        for i, instr in enumerate(instructions):
            self.code[i] = instr.code
            if instr.dest is not None:
                self.dest[i] = 32 if instr.dest == 31 else instr.dest
            if instr.src1 is not None:
                self.src1[i] = instr.src1
            if instr.src2 is not None:
                self.src2[i] = instr.src2
            self.lit[i] = instr.lit
            self.disp[i] = instr.disp
            if isinstance(instr.target, int):
                self.target[i] = instr.target
            self.tbl[i] = instr.table
            self.bsel[i] = instr.bsel

    def run(
        self,
        max_instructions: int = 200_000_000,
        record_trace: bool = True,
        record_values: bool = False,
    ) -> RunResult:
        """Execute from instruction 0 until HALT.

        Returns the executed-instruction count and, when requested, the
        compact dynamic trace for the timing models.  A machine executes
        at most once (``run`` mutates registers and memory in place);
        call :meth:`reset` with a fresh memory image to reuse the compiled
        program, or build a new :class:`Machine`.
        """
        chunks = list(self._execute(
            chunk_limit=None,
            record_trace=record_trace,
            record_values=record_values,
            max_instructions=max_instructions,
        ))
        trace = None
        if record_trace:
            chunk = chunks[0]
            trace = Trace(
                program=self.program,
                static=StaticInfo.from_program(self.program),
                seq=chunk.seq,
                addrs=chunk.addrs,
                values=chunk.values,
                instructions_executed=self.instructions_executed,
            )
        return RunResult(instructions=self.instructions_executed, trace=trace)

    def iter_trace(
        self,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        *,
        record_values: bool = False,
        max_instructions: int = 200_000_000,
    ) -> Iterator[TraceChunk]:
        """Execute live, yielding bounded :class:`TraceChunk`\\ s.

        The chunked twin of :meth:`run`: the interpreter advances only as
        chunks are consumed, so peak trace memory is O(``chunk_size``)
        regardless of dynamic instruction count.  Like ``run`` this claims
        the machine's single execution; :attr:`instructions_executed` and
        :attr:`halted` are valid once the iterator is exhausted.
        """
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        return self._execute(
            chunk_limit=chunk_size,
            record_trace=True,
            record_values=record_values,
            max_instructions=max_instructions,
        )

    def stream(
        self,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        *,
        record_values: bool = False,
        max_instructions: int = 200_000_000,
    ) -> "StreamingTrace":
        """A :class:`StreamingTrace` trace source over this machine."""
        return StreamingTrace(
            self,
            chunk_size=chunk_size,
            record_values=record_values,
            max_instructions=max_instructions,
        )

    def reset(self, memory: Memory | None = None) -> None:
        """Re-arm the machine for another execution.

        Clears the architectural registers and (when given) installs a
        fresh memory image.  ``run`` mutates memory in place, so reusing
        the mutated image is almost never what a caller wants -- pass the
        rebuilt :class:`Memory` explicitly to make the choice visible.
        """
        self.regs = [0] * 33
        if memory is not None:
            self.memory = memory
        self._used = False
        self.halted = False
        self.instructions_executed = 0

    def _claim(self) -> None:
        if self._used:
            raise SimulationError(
                "Machine already executed: run()/iter_trace() mutate "
                "registers and memory in place, so a second execution "
                "would silently diverge.  Build a new Machine or call "
                "reset() with a fresh Memory."
            )
        self._used = True

    def _execute(
        self,
        chunk_limit: int | None,
        record_trace: bool,
        record_values: bool,
        max_instructions: int,
    ) -> Iterator[TraceChunk]:
        """Claim the machine and return the interpreter chunk generator."""
        self._claim()
        return self._interpret(
            chunk_limit if chunk_limit is not None else (1 << 62),
            record_trace, record_values, max_instructions,
        )

    def _interpret(
        self,
        chunk_limit: int,
        record_trace: bool,
        record_values: bool,
        max_instructions: int,
    ) -> Iterator[TraceChunk]:
        regs = self.regs
        regs[31] = 0
        memory = self.memory
        data = memory.data
        mem_size = memory.size
        code, dest, src1, src2 = self.code, self.dest, self.src1, self.src2
        lit, disp, target = self.lit, self.disp, self.target
        tbl, bsel = self.tbl, self.bsel
        n = len(code)

        # Entries stage into plain lists (fastest append) and flush to
        # compact arrays at each chunk boundary.
        seq: list[int] = []
        addrs: list[int] = []
        values: list[int] | None = [] if record_values else None
        seq_append = seq.append
        addrs_append = addrs.append
        filled = 0
        trace_base = 0

        pc = 0
        executed = 0
        while True:
            if pc >= n:
                raise SimulationError(f"fell off program end at pc={pc}")
            c = code[pc]
            executed += 1
            if executed > max_instructions:
                raise SimulationError(
                    f"exceeded {max_instructions} instructions (runaway loop?)"
                )
            addr = 0
            next_pc = pc + 1
            if c == 7:  # XOR
                regs[dest[pc]] = regs[src1[pc]] ^ (
                    lit[pc] if lit[pc] is not None else regs[src2[pc]]
                )
            elif c == 3:  # ADDL
                b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                regs[dest[pc]] = (regs[src1[pc]] + b) & M32
            elif c == 1:  # ADDQ
                b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                regs[dest[pc]] = (regs[src1[pc]] + b) & M64
            elif c == 5:  # AND
                regs[dest[pc]] = regs[src1[pc]] & (
                    lit[pc] if lit[pc] is not None else regs[src2[pc]]
                )
            elif c == 6:  # BIS
                regs[dest[pc]] = regs[src1[pc]] | (
                    lit[pc] if lit[pc] is not None else regs[src2[pc]]
                )
            elif c == 10:  # SLL
                b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                regs[dest[pc]] = (regs[src1[pc]] << (b & 63)) & M64
            elif c == 11:  # SRL
                b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                regs[dest[pc]] = regs[src1[pc]] >> (b & 63)
            elif c == 20:  # EXTBL
                b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                regs[dest[pc]] = (regs[src1[pc]] >> ((b & 7) * 8)) & 0xFF
            elif c == 57:  # SBOX
                base = regs[src1[pc]]
                index = (regs[src2[pc]] >> (bsel[pc] * 8)) & 0xFF
                addr = (base & ~0x3FF) | (index << 2)
                if addr + 4 > mem_size:
                    raise SimulationError(f"SBOX access at 0x{addr:x} oob")
                regs[dest[pc]] = int.from_bytes(data[addr : addr + 4], "little")
            elif c == 31:  # LDL
                addr = (regs[src2[pc]] + disp[pc]) & M64
                if addr % 4 or addr + 4 > mem_size:
                    raise SimulationError(f"LDL at 0x{addr:x} (pc {pc})")
                regs[dest[pc]] = int.from_bytes(data[addr : addr + 4], "little")
            elif c == 30:  # LDQ
                addr = (regs[src2[pc]] + disp[pc]) & M64
                if addr % 8 or addr + 8 > mem_size:
                    raise SimulationError(f"LDQ at 0x{addr:x} (pc {pc})")
                regs[dest[pc]] = int.from_bytes(data[addr : addr + 8], "little")
            elif c == 33:  # LDBU
                addr = (regs[src2[pc]] + disp[pc]) & M64
                if addr >= mem_size:
                    raise SimulationError(f"LDBU at 0x{addr:x} (pc {pc})")
                regs[dest[pc]] = data[addr]
            elif c == 32:  # LDWU
                addr = (regs[src2[pc]] + disp[pc]) & M64
                if addr % 2 or addr + 2 > mem_size:
                    raise SimulationError(f"LDWU at 0x{addr:x} (pc {pc})")
                regs[dest[pc]] = int.from_bytes(data[addr : addr + 2], "little")
            elif c == 35:  # STL
                addr = (regs[src2[pc]] + disp[pc]) & M64
                if addr % 4 or addr + 4 > mem_size:
                    raise SimulationError(f"STL at 0x{addr:x} (pc {pc})")
                data[addr : addr + 4] = (regs[src1[pc]] & M32).to_bytes(4, "little")
            elif c == 34:  # STQ
                addr = (regs[src2[pc]] + disp[pc]) & M64
                if addr % 8 or addr + 8 > mem_size:
                    raise SimulationError(f"STQ at 0x{addr:x} (pc {pc})")
                data[addr : addr + 8] = regs[src1[pc]].to_bytes(8, "little")
            elif c == 37:  # STB
                addr = (regs[src2[pc]] + disp[pc]) & M64
                if addr >= mem_size:
                    raise SimulationError(f"STB at 0x{addr:x} (pc {pc})")
                data[addr] = regs[src1[pc]] & 0xFF
            elif c == 36:  # STW
                addr = (regs[src2[pc]] + disp[pc]) & M64
                if addr % 2 or addr + 2 > mem_size:
                    raise SimulationError(f"STW at 0x{addr:x} (pc {pc})")
                data[addr : addr + 2] = (regs[src1[pc]] & 0xFFFF).to_bytes(2, "little")
            elif c == 50:  # ROLL
                b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                amount = b & 31
                value = regs[src1[pc]] & M32
                regs[dest[pc]] = (
                    ((value << amount) | (value >> (32 - amount))) & M32
                    if amount else value
                )
            elif c == 51:  # RORL
                b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                amount = (32 - (b & 31)) & 31
                value = regs[src1[pc]] & M32
                regs[dest[pc]] = (
                    ((value << amount) | (value >> (32 - amount))) & M32
                    if amount else value
                )
            elif c == 54:  # ROLXL
                amount = lit[pc] & 31
                value = regs[src1[pc]] & M32
                rotated = (
                    ((value << amount) | (value >> (32 - amount))) & M32
                    if amount else value
                )
                regs[dest[pc]] = (rotated ^ regs[dest[pc]]) & M32
            elif c == 55:  # RORXL
                amount = (32 - (lit[pc] & 31)) & 31
                value = regs[src1[pc]] & M32
                rotated = (
                    ((value << amount) | (value >> (32 - amount))) & M32
                    if amount else value
                )
                regs[dest[pc]] = (rotated ^ regs[dest[pc]]) & M32
            elif c == 56:  # MULMOD (IDEA multiply, 0 represents 2^16)
                a = regs[src1[pc]] & 0xFFFF
                b = (lit[pc] if lit[pc] is not None else regs[src2[pc]]) & 0xFFFF
                if a == 0:
                    a = 0x10000
                if b == 0:
                    b = 0x10000
                regs[dest[pc]] = ((a * b) % 0x10001) & 0xFFFF
            elif c == 59:  # XBOX
                operand = regs[src1[pc]]
                perm_map = regs[src2[pc]]
                result = 0
                base_bit = bsel[pc] * 8
                for j in range(8):
                    bit = (operand >> ((perm_map >> (6 * j)) & 0x3F)) & 1
                    result |= bit << (base_bit + j)
                regs[dest[pc]] = result
            elif c == 2:  # SUBQ
                b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                regs[dest[pc]] = (regs[src1[pc]] - b) & M64
            elif c == 4:  # SUBL
                b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                regs[dest[pc]] = (regs[src1[pc]] - b) & M32
            elif c == 8:  # BIC
                b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                regs[dest[pc]] = regs[src1[pc]] & ~b & M64
            elif c == 9:  # ORNOT
                b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                regs[dest[pc]] = (regs[src1[pc]] | (~b & M64)) & M64
            elif c == 12:  # SRA
                b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                value = regs[src1[pc]]
                if value & 0x8000000000000000:
                    value -= 1 << 64
                regs[dest[pc]] = (value >> (b & 63)) & M64
            elif c == 13:  # MULL
                b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                regs[dest[pc]] = ((regs[src1[pc]] & M32) * (b & M32)) & M32
            elif c == 14:  # MULQ
                b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                regs[dest[pc]] = (regs[src1[pc]] * b) & M64
            elif c == 15:  # CMPEQ
                b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                regs[dest[pc]] = 1 if regs[src1[pc]] == b else 0
            elif c == 16:  # CMPULT
                b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                regs[dest[pc]] = 1 if regs[src1[pc]] < b else 0
            elif c == 17:  # CMPULE
                b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                regs[dest[pc]] = 1 if regs[src1[pc]] <= b else 0
            elif c == 18:  # CMPLT
                b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                a = regs[src1[pc]]
                if a & 0x8000000000000000:
                    a -= 1 << 64
                if b & 0x8000000000000000:
                    b -= 1 << 64
                regs[dest[pc]] = 1 if a < b else 0
            elif c == 19:  # CMPLE
                b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                a = regs[src1[pc]]
                if a & 0x8000000000000000:
                    a -= 1 << 64
                if b & 0x8000000000000000:
                    b -= 1 << 64
                regs[dest[pc]] = 1 if a <= b else 0
            elif c == 21:  # INSBL
                b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                regs[dest[pc]] = (regs[src1[pc]] & 0xFF) << ((b & 7) * 8)
            elif c == 22:  # ZAPNOT
                b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                regs[dest[pc]] = regs[src1[pc]] & _ZAPNOT_MASKS[b & 0xFF]
            elif c == 23:  # S4ADDQ
                b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                regs[dest[pc]] = (regs[src1[pc]] * 4 + b) & M64
            elif c == 24:  # S8ADDQ
                b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                regs[dest[pc]] = (regs[src1[pc]] * 8 + b) & M64
            elif c == 25:  # CMOVEQ
                if regs[src1[pc]] == 0:
                    b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                    regs[dest[pc]] = b
            elif c == 26:  # CMOVNE
                if regs[src1[pc]] != 0:
                    b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                    regs[dest[pc]] = b
            elif c == 27:  # LDA
                regs[dest[pc]] = (regs[src2[pc]] + disp[pc]) & M64
            elif c == 28:  # LDIQ
                regs[dest[pc]] = lit[pc]
            elif c == 40:  # BR
                next_pc = target[pc]
            elif c == 41:  # BEQ
                if regs[src1[pc]] == 0:
                    next_pc = target[pc]
            elif c == 42:  # BNE
                if regs[src1[pc]] != 0:
                    next_pc = target[pc]
            elif c == 43:  # BLT
                if regs[src1[pc]] & 0x8000000000000000:
                    next_pc = target[pc]
            elif c == 44:  # BLE
                a = regs[src1[pc]]
                if a == 0 or a & 0x8000000000000000:
                    next_pc = target[pc]
            elif c == 45:  # BGT
                a = regs[src1[pc]]
                if a != 0 and not a & 0x8000000000000000:
                    next_pc = target[pc]
            elif c == 46:  # BGE
                if not regs[src1[pc]] & 0x8000000000000000:
                    next_pc = target[pc]
            elif c == 52:  # ROLQ
                b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                amount = b & 63
                value = regs[src1[pc]]
                regs[dest[pc]] = (
                    ((value << amount) | (value >> (64 - amount))) & M64
                    if amount else value
                )
            elif c == 53:  # RORQ
                b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                amount = (64 - (b & 63)) & 63
                value = regs[src1[pc]]
                regs[dest[pc]] = (
                    ((value << amount) | (value >> (64 - amount))) & M64
                    if amount else value
                )
            elif c == 48 or c == 49:  # GRPL / GRPQ (Shi & Lee)
                width = 32 if c == 48 else 64
                x = regs[src1[pc]]
                ctrl = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                low = high = 0
                low_count = high_count = 0
                for i in range(width):
                    bit = (x >> i) & 1
                    if (ctrl >> i) & 1:
                        high |= bit << high_count
                        high_count += 1
                    else:
                        low |= bit << low_count
                        low_count += 1
                regs[dest[pc]] = low | (high << low_count)
            elif c == 58:  # SBOXSYNC: timing-only
                pass
            elif c == 0:  # HALT
                if record_trace:
                    seq_append(pc)
                    addrs_append(0)
                    if values is not None:
                        values.append(0)
                    filled += 1
                break
            else:
                raise SimulationError(f"unimplemented opcode {c} at pc {pc}")

            # Writes to r31 were remapped to shadow slot 32 at compile time,
            # so regs[31] stays zero without a per-instruction reset.
            if record_trace:
                seq_append(pc)
                addrs_append(addr)
                if values is not None:
                    d = dest[pc]
                    values.append(regs[d] if d != 32 else 0)
                filled += 1
                if filled >= chunk_limit:
                    yield TraceChunk(
                        seq=array(SEQ_TYPECODE, seq),
                        addrs=array(ADDR_TYPECODE, addrs),
                        start=trace_base,
                        values=(None if values is None
                                else array(VALUE_TYPECODE, values)),
                    )
                    trace_base += filled
                    filled = 0
                    del seq[:]
                    del addrs[:]
                    if values is not None:
                        del values[:]
            pc = next_pc

        self.instructions_executed = executed
        self.halted = True
        if record_trace and filled:
            yield TraceChunk(
                seq=array(SEQ_TYPECODE, seq),
                addrs=array(ADDR_TYPECODE, addrs),
                start=trace_base,
                values=(None if values is None
                        else array(VALUE_TYPECODE, values)),
            )


class StreamingTrace:
    """Single-pass :class:`~repro.sim.trace.TraceSource` over a live machine.

    Satisfies the same protocol as a materialized
    :class:`~repro.sim.trace.Trace` -- ``program``, ``static`` and
    ``chunks()`` -- but produces entries on demand from the functional
    interpreter, so only one chunk of the dynamic trace exists at a time.
    Unlike a ``Trace`` it is single-use: the underlying machine executes
    exactly once, as the chunks are consumed.

    After exhaustion, :attr:`instructions` holds the executed-instruction
    count and the machine's memory holds the program's output (the kernel
    harness validates it in :meth:`repro.kernels.runtime.KernelStream.finalize`).
    """

    def __init__(
        self,
        machine: Machine,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        *,
        record_values: bool = False,
        max_instructions: int = 200_000_000,
    ):
        self.machine = machine
        self.program = machine.program
        self.static = StaticInfo.from_program(machine.program)
        self.chunk_size = chunk_size
        self._record_values = record_values
        self._max_instructions = max_instructions
        self._consumed = False

    @property
    def exhausted(self) -> bool:
        return self.machine.halted

    @property
    def instructions(self) -> int:
        if not self.machine.halted:
            raise SimulationError(
                "streaming trace not exhausted: instruction count is only "
                "known once the machine halts"
            )
        return self.machine.instructions_executed

    def chunks(self, chunk_size: int | None = None):
        """Run the machine, yielding chunks (single use)."""
        if self._consumed:
            raise SimulationError(
                "StreamingTrace is single-pass and was already consumed"
            )
        self._consumed = True
        return self.machine.iter_trace(
            chunk_size if chunk_size is not None else self.chunk_size,
            record_values=self._record_values,
            max_instructions=self._max_instructions,
        )
