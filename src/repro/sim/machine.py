"""Functional RISC-A simulator.

Executes a finalized program against a :class:`~repro.sim.memory.Memory`,
optionally recording the compact dynamic trace the timing models consume.
Execution itself is delegated to a pluggable backend
(:mod:`repro.sim.backends`): the portable ``"interpreter"`` dispatch loop
or the per-program ``"compiled"`` specializer.  :meth:`Machine.execute` is
the single entry point; it selects the backend and the delivery shape
(batch ``RunResult``, chunk iterator, or :class:`StreamingTrace`).

Architectural notes (see ``repro.isa.opcodes`` for the full list):
* registers hold unsigned 64-bit values; ``r31`` reads as zero (writes to it
  are compiled to a shadow slot),
* 32-bit results (``ADDL`` family, ``ROLL``, ``ROLXL``, SBOX loads, ``LDL``)
  are zero-extended,
* SBOXSYNC is a timing-only instruction: the functional model reads S-box
  tables from live memory, which is equivalent because kernels only store to
  a non-aliased S-box region before the matching SBOXSYNC (RC4's in-kernel
  stores use the aliased SBOX form).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.isa.program import Program
from repro.sim.memory import Memory
from repro.sim.trace import (
    DEFAULT_CHUNK_SIZE,
    StaticInfo,
    Trace,
    TraceChunk,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (backends -> here)
    from repro.sim.backends import ExecutionBackend

M32 = 0xFFFFFFFF
M64 = 0xFFFFFFFFFFFFFFFF

_ZAPNOT_MASKS = [
    sum(0xFF << (8 * bit) for bit in range(8) if mask & (1 << bit))
    for mask in range(256)
]


class SimulationError(RuntimeError):
    """Raised when execution fails (bad memory access, runaway program)."""


@dataclass
class RunResult:
    instructions: int
    trace: Trace | None


class Machine:
    """Functional executor for one program instance."""

    def __init__(self, program: Program, memory: Memory):
        if not program.finalized:
            raise ValueError("program must be finalized")
        self.program = program
        self.memory = memory
        self.regs = [0] * 33  # slot 32 swallows writes to r31
        #: One-shot guard: execution mutates registers and memory in place.
        self._used = False
        self.halted = False
        self.instructions_executed = 0
        self._compile()

    def _compile(self) -> None:
        """Flatten instruction fields into parallel arrays for the hot loop."""
        instructions = self.program.instructions
        n = len(instructions)
        self.code = [0] * n
        self.dest = [32] * n
        self.src1 = [31] * n
        self.src2 = [31] * n
        self.lit = [None] * n
        self.disp = [0] * n
        self.target = [0] * n
        self.tbl = [0] * n
        self.bsel = [0] * n
        for i, instr in enumerate(instructions):
            self.code[i] = instr.code
            if instr.dest is not None:
                self.dest[i] = 32 if instr.dest == 31 else instr.dest
            if instr.src1 is not None:
                self.src1[i] = instr.src1
            if instr.src2 is not None:
                self.src2[i] = instr.src2
            self.lit[i] = instr.lit
            self.disp[i] = instr.disp
            if isinstance(instr.target, int):
                self.target[i] = instr.target
            self.tbl[i] = instr.table
            self.bsel[i] = instr.bsel

    def execute(
        self,
        *,
        backend: "str | ExecutionBackend | None" = None,
        stream: bool = False,
        chunk_size: int | None = None,
        record_trace: bool = True,
        record_values: bool = False,
        max_instructions: int = 200_000_000,
    ) -> "RunResult | Iterator[TraceChunk] | StreamingTrace":
        """Execute from instruction 0 until HALT -- the single entry point.

        ``backend`` selects how execution happens: ``None`` (the default
        backend), a registered name (``"interpreter"``, ``"compiled"``),
        or an :class:`~repro.sim.backends.ExecutionBackend` instance.
        Every backend produces bit-identical architectural effects and
        trace chunks, so the choice only affects speed.

        ``stream`` and ``chunk_size`` select the delivery shape:

        * ``execute()`` -- run to completion, return a :class:`RunResult`
          (with a materialized :class:`~repro.sim.trace.Trace` when
          ``record_trace`` is true).
        * ``execute(chunk_size=n)`` -- return an iterator of bounded
          :class:`~repro.sim.trace.TraceChunk` objects; execution
          advances only as chunks are consumed, so peak trace memory is
          O(``chunk_size``).
        * ``execute(stream=True, chunk_size=n)`` -- return a
          :class:`StreamingTrace`, the single-pass ``TraceSource`` the
          timing pipeline consumes (``chunk_size`` defaults to
          ``DEFAULT_CHUNK_SIZE``).

        A machine executes at most once (execution mutates registers and
        memory in place); call :meth:`reset` with a fresh memory image to
        reuse the decoded program, or build a new :class:`Machine`.
        The chunked shapes claim the execution immediately;
        ``stream=True`` defers the claim until chunks are first consumed.
        """
        from repro.sim.backends import UNBOUNDED_CHUNK, get_backend

        resolved = get_backend(backend)
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if stream:
            if not record_trace:
                raise ValueError("stream=True requires record_trace=True")
            return StreamingTrace(
                self,
                chunk_size=(DEFAULT_CHUNK_SIZE if chunk_size is None
                            else chunk_size),
                backend=resolved,
                record_values=record_values,
                max_instructions=max_instructions,
            )
        if chunk_size is not None:
            if not record_trace:
                raise ValueError(
                    "chunked execution requires record_trace=True "
                    "(a traceless run yields no chunks)"
                )
            self._claim()
            return resolved.execute(
                self,
                chunk_limit=chunk_size,
                record_trace=True,
                record_values=record_values,
                max_instructions=max_instructions,
            )
        self._claim()
        chunks = list(resolved.execute(
            self,
            chunk_limit=UNBOUNDED_CHUNK,
            record_trace=record_trace,
            record_values=record_values,
            max_instructions=max_instructions,
        ))
        trace = None
        if record_trace:
            chunk = chunks[0]
            trace = Trace(
                program=self.program,
                static=StaticInfo.from_program(self.program),
                seq=chunk.seq,
                addrs=chunk.addrs,
                values=chunk.values,
                instructions_executed=self.instructions_executed,
            )
        return RunResult(instructions=self.instructions_executed, trace=trace)

    def reset(self, memory: Memory | None = None) -> None:
        """Re-arm the machine for another execution.

        Clears the architectural registers and (when given) installs a
        fresh memory image.  ``run`` mutates memory in place, so reusing
        the mutated image is almost never what a caller wants -- pass the
        rebuilt :class:`Memory` explicitly to make the choice visible.
        """
        self.regs = [0] * 33
        if memory is not None:
            self.memory = memory
        self._used = False
        self.halted = False
        self.instructions_executed = 0

    def _claim(self) -> None:
        if self._used:
            raise SimulationError(
                "Machine already executed: execute() mutates "
                "registers and memory in place, so a second execution "
                "would silently diverge.  Build a new Machine or call "
                "reset() with a fresh Memory."
            )
        self._used = True


class StreamingTrace:
    """Single-pass :class:`~repro.sim.trace.TraceSource` over a live machine.

    Satisfies the same protocol as a materialized
    :class:`~repro.sim.trace.Trace` -- ``program``, ``static`` and
    ``chunks()`` -- but produces entries on demand from the functional
    interpreter, so only one chunk of the dynamic trace exists at a time.
    Unlike a ``Trace`` it is single-use: the underlying machine executes
    exactly once, as the chunks are consumed.

    After exhaustion, :attr:`instructions` holds the executed-instruction
    count and the machine's memory holds the program's output (the kernel
    harness validates it in :meth:`repro.kernels.runtime.KernelStream.finalize`).
    """

    def __init__(
        self,
        machine: Machine,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        *,
        backend: "str | ExecutionBackend | None" = None,
        record_values: bool = False,
        max_instructions: int = 200_000_000,
    ):
        self.machine = machine
        self.program = machine.program
        self.static = StaticInfo.from_program(machine.program)
        self.chunk_size = chunk_size
        self._backend = backend
        self._record_values = record_values
        self._max_instructions = max_instructions
        self._consumed = False

    @property
    def exhausted(self) -> bool:
        return self.machine.halted

    @property
    def instructions(self) -> int:
        if not self.machine.halted:
            raise SimulationError(
                "streaming trace not exhausted: instruction count is only "
                "known once the machine halts"
            )
        return self.machine.instructions_executed

    def chunks(self, chunk_size: int | None = None):
        """Run the machine, yielding chunks (single use)."""
        if self._consumed:
            raise SimulationError(
                "StreamingTrace is single-pass and was already consumed"
            )
        self._consumed = True
        result = self.machine.execute(
            backend=self._backend,
            chunk_size=chunk_size if chunk_size is not None else self.chunk_size,
            record_values=self._record_values,
            max_instructions=self._max_instructions,
        )
        assert not isinstance(result, (RunResult, StreamingTrace))
        return result
