"""ASCII pipeline viewer -- this reproduction's SimpleView.

The paper's authors used the SimpleView visualization framework to watch
instructions stall in the modeled pipeline and find what slowed each cipher
kernel.  This module renders the same picture from the timing model's
schedule hook: one row per dynamic instruction, one column per cycle,

    F  fetch            =  waiting for operands / resources after fetch
    X  executing        (issue .. complete)
    .  completed, waiting to retire
    R  retire

Usage::

    stats = simulate(trace, FOURW, warm, schedule_range=(100, 140))
    print(render_pipeline(trace, stats.extra["schedule"]))
"""

from __future__ import annotations

from repro.sim.trace import Trace

_MAX_COLUMNS = 120


def render_pipeline(
    trace: Trace,
    schedule: list[tuple[int, int, int, int, int, int]],
    max_columns: int = _MAX_COLUMNS,
) -> str:
    """Render a schedule window as an ASCII timeline."""
    if not schedule:
        return "(empty schedule)"
    base_cycle = min(entry[2] for entry in schedule)
    last_cycle = max(entry[5] for entry in schedule)
    span = last_cycle - base_cycle + 1
    clipped = span > max_columns

    instructions = trace.program.instructions
    label_width = max(
        len(instructions[entry[1]].render()) for entry in schedule
    )
    label_width = min(label_width, 36)

    header = (
        f"{'pos':>6} {'instruction':<{label_width}} cycle {base_cycle}"
        f"{' (clipped)' if clipped else ''}"
    )
    lines = [header]
    for position, static_index, fetch, issue, complete, retire in schedule:
        row = []
        for cycle in range(base_cycle, min(last_cycle, base_cycle + max_columns) + 1):
            if cycle == fetch:
                row.append("F")
            elif cycle == retire:
                row.append("R")
            elif issue <= cycle < complete:
                row.append("X")
            elif fetch < cycle < issue:
                row.append("=")
            elif complete <= cycle < retire:
                row.append(".")
            else:
                row.append(" ")
        text = instructions[static_index].render()[:label_width]
        lines.append(f"{position:>6} {text:<{label_width}} {''.join(row)}")
    return "\n".join(lines)


def stall_summary(
    schedule: list[tuple[int, int, int, int, int, int]]
) -> dict[str, float]:
    """Average cycles per pipeline stage over the window."""
    if not schedule:
        return {}
    n = len(schedule)
    wait = sum(issue - fetch for _, _, fetch, issue, _, _ in schedule)
    execute = sum(complete - issue for _, _, _, issue, complete, _ in schedule)
    drain = sum(retire - complete for _, _, _, _, complete, retire in schedule)
    return {
        "mean_wait_cycles": wait / n,
        "mean_execute_cycles": execute / n,
        "mean_retire_wait_cycles": drain / n,
    }
