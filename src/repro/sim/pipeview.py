"""ASCII pipeline viewer -- this reproduction's SimpleView.

The paper's authors used the SimpleView visualization framework to watch
instructions stall in the modeled pipeline and find what slowed each cipher
kernel.  This module renders the same picture from the timing model's
schedule hook: one row per dynamic instruction, one column per cycle,

    F  fetch            =  waiting for operands / resources after fetch
    X  executing        (issue .. complete)
    .  completed, waiting to retire
    R  retire

Both this renderer and the Perfetto exporter
(:func:`repro.obs.pipeline.schedule_trace_events`) consume the same
structured span stream (:func:`repro.obs.pipeline.schedule_spans`), so the
ASCII picture and the trace-viewer timeline can never disagree.

Usage::

    stats = simulate(trace, FOURW, warm, schedule_range=(100, 140))
    print(render_pipeline(trace, stats.extra["schedule"]))
"""

from __future__ import annotations

from repro.obs.pipeline import schedule_spans
from repro.sim.trace import Trace

_MAX_COLUMNS = 120


def render_pipeline(
    trace: Trace,
    schedule: list[tuple[int, int, int, int, int, int]],
    max_columns: int = _MAX_COLUMNS,
) -> str:
    """Render a schedule window as an ASCII timeline."""
    spans = schedule_spans(schedule)
    if not spans:
        return "(empty schedule)"
    base_cycle = min(span.fetch for span in spans)
    last_cycle = max(span.retire for span in spans)
    span_width = last_cycle - base_cycle + 1
    clipped = span_width > max_columns

    instructions = trace.program.instructions
    label_width = max(
        len(instructions[span.static_index].render()) for span in spans
    )
    label_width = min(label_width, 36)

    header = (
        f"{'pos':>6} {'instruction':<{label_width}} cycle {base_cycle}"
        f"{' (clipped)' if clipped else ''}"
    )
    lines = [header]
    for span in spans:
        row = []
        for cycle in range(base_cycle,
                           min(last_cycle, base_cycle + max_columns) + 1):
            if cycle == span.fetch:
                row.append("F")
            elif cycle == span.retire:
                row.append("R")
            elif span.issue <= cycle < span.complete:
                row.append("X")
            elif span.fetch < cycle < span.issue:
                row.append("=")
            elif span.complete <= cycle < span.retire:
                row.append(".")
            else:
                row.append(" ")
        text = instructions[span.static_index].render()[:label_width]
        lines.append(f"{span.position:>6} {text:<{label_width}} {''.join(row)}")
    return "\n".join(lines)


def stall_summary(
    schedule: list[tuple[int, int, int, int, int, int]]
) -> dict[str, float]:
    """Average cycles per pipeline stage over the window."""
    spans = schedule_spans(schedule)
    if not spans:
        return {}
    n = len(spans)
    return {
        "mean_wait_cycles": sum(span.wait_cycles for span in spans) / n,
        "mean_execute_cycles": sum(span.execute_cycles for span in spans) / n,
        "mean_retire_wait_cycles": sum(span.drain_cycles for span in spans) / n,
    }
