"""Result record for one timing simulation."""

from __future__ import annotations

from dataclasses import dataclass, field, fields

#: Issue-slot stall categories, in display order.  Every issue slot of every
#: cycle on a finite-issue-width machine is either used by an instruction or
#: attributed to exactly one of these (see ``docs/observability.md`` for the
#: definitions and their mapping to the paper's bottleneck terminology).
STALL_CATEGORIES = (
    "fetch",        # no fetched-but-unissued instruction exists (fetch-limited)
    "mispredict",   # ... because fetch is recovering from a misprediction
    "frontend",     # oldest unissued instruction still in the fetch pipeline
    "window",       # oldest unissued instruction waiting for a window slot
    "operand",      # waiting for source operands (incl. address generation)
    "alias",        # memory-ordering/alias/sync stall (paper section 5)
    "issue_width",  # ready, but all issue slots in the cycle were taken
    "fu_ialu",      # ready, but every integer ALU was busy
    "fu_rot",       # ready, but every rotator/XBOX unit was busy
    "fu_mul",       # ready, but the multiplier slots were busy
    "fu_mem",       # ready, but every d-cache port was busy
    "fu_sbox",      # ready, but the SBox-cache port was busy
    "drain",        # past the last issue: pipeline drain to retirement
)

#: The subset of categories meaningful per instruction (instruction view);
#: fetch/mispredict/frontend/drain describe machine state with *no* oldest
#: unissued instruction or the run tail, so they have no per-static rows.
WAIT_CATEGORIES = STALL_CATEGORIES[3:-1]

#: ``extra`` keys that record *where a result came from* (which program
#: produced the hot-spot table, which timing engine ran) rather than what
#: was measured.  Diff tooling reads them to refuse cross-program hot-spot
#: comparisons; equality ignores them so interchangeable engines still
#: produce equal results.
PROVENANCE_KEYS = ("program_digest", "timing_engine")


@dataclass
class SimStats:
    """Cycle counts and event counters from one timing run."""

    config_name: str
    instructions: int = 0
    cycles: int = 0
    branches: int = 0
    mispredictions: int = 0
    loads: int = 0
    stores: int = 0
    store_forwards: int = 0
    l1_misses: int = 0
    l2_misses: int = 0
    tlb_misses: int = 0
    sbox_accesses: int = 0
    sbox_cache_misses: int = 0
    #: Machine view: total issue slots (``cycles * issue_width``); 0 when the
    #: machine has unlimited issue width and slot accounting is undefined.
    issue_slots: int = 0
    #: Machine view: unused issue slots attributed per stall category.  The
    #: exact invariant ``instructions + sum(stall_slots.values()) ==
    #: issue_slots`` holds for every finite-issue-width run.
    stall_slots: dict = field(default_factory=dict)
    #: Instruction view: total cycles dynamic instructions spent blocked,
    #: per :data:`WAIT_CATEGORIES` (cycles, not slots; one instruction
    #: waiting 10 cycles contributes 10 regardless of machine width).
    wait_cycles: dict = field(default_factory=dict)
    #: Hot-spot table: the static instructions that accumulated the most
    #: wait cycles, each ``{"static_index", "text", "executions",
    #: "total_wait_cycles", "wait_cycles": {category: cycles}}``.
    hotspots: list = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    def __eq__(self, other) -> bool:
        """Measurement equality: provenance stamps don't make runs differ.

        The engine- and backend-equivalence contracts compare SimStats
        across stacks whose :data:`PROVENANCE_KEYS` stamps legitimately
        differ (``timing_engine`` names the engine that ran), so those
        keys are excluded; every measured field must match exactly.
        """
        if not isinstance(other, SimStats):
            return NotImplemented
        for f in fields(self):
            mine, theirs = getattr(self, f.name), getattr(other, f.name)
            if f.name == "extra":
                strip = lambda d: {k: v for k, v in d.items()
                                   if k not in PROVENANCE_KEYS}
                mine, theirs = strip(mine), strip(theirs)
            if mine != theirs:
                return False
        return True

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def bytes_per_kilocycle(self, payload_bytes: int) -> float:
        """The paper's Figure 4 metric: bytes encrypted per 1000 cycles.

        On a 1 GHz machine this number equals MB/s of encryption throughput.
        """
        return 1000.0 * payload_bytes / self.cycles if self.cycles else 0.0

    @property
    def stalled_slots(self) -> int:
        return sum(self.stall_slots.values())

    def stall_fractions(self) -> dict[str, float]:
        """Issue-slot shares: ``issued`` plus each stall category, sums to 1.

        Empty when the run had no slot accounting (unlimited issue width).
        """
        if not self.issue_slots:
            return {}
        fractions = {"issued": self.instructions / self.issue_slots}
        for category in STALL_CATEGORIES:
            slots = self.stall_slots.get(category, 0)
            if slots:
                fractions[category] = slots / self.issue_slots
        return fractions

    def summary(self) -> str:
        return (
            f"{self.config_name}: {self.instructions} insts, "
            f"{self.cycles} cycles, IPC {self.ipc:.2f}"
        )
