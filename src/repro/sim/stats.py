"""Result record for one timing simulation."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimStats:
    """Cycle counts and event counters from one timing run."""

    config_name: str
    instructions: int = 0
    cycles: int = 0
    branches: int = 0
    mispredictions: int = 0
    loads: int = 0
    stores: int = 0
    store_forwards: int = 0
    l1_misses: int = 0
    l2_misses: int = 0
    tlb_misses: int = 0
    sbox_accesses: int = 0
    sbox_cache_misses: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def bytes_per_kilocycle(self, payload_bytes: int) -> float:
        """The paper's Figure 4 metric: bytes encrypted per 1000 cycles.

        On a 1 GHz machine this number equals MB/s of encryption throughput.
        """
        return 1000.0 * payload_bytes / self.cycles if self.cycles else 0.0

    def summary(self) -> str:
        return (
            f"{self.config_name}: {self.instructions} insts, "
            f"{self.cycles} cycles, IPC {self.ipc:.2f}"
        )
