"""Cache and TLB models for the timing simulator.

The paper's baseline memory system (section 3.2): 32 KB 2-way L1 data cache
with 32-byte blocks and next-line prefetch, a 512 KB 4-way unified L2 with a
12-cycle hit latency, a 120-cycle round trip to memory, and a 32-entry 8-way
data TLB with a 30-cycle miss penalty.

The hierarchy returns the *extra* latency beyond the pipelined L1 hit path;
the timing model adds it to the base load latency.  The paper observes (and
Figure 5 confirms) that these kernels essentially never miss -- the model
exists so that observation is measured, not assumed.
"""

from __future__ import annotations


class SetAssociativeCache:
    """LRU set-associative cache tracking tags only."""

    def __init__(self, size: int, assoc: int, block: int):
        if size % (assoc * block):
            raise ValueError("cache size must be divisible by assoc*block")
        self.block = block
        self.assoc = assoc
        self.num_sets = size // (assoc * block)
        # Each set is an ordered list of tags, most recently used last.
        self.sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _locate(self, address: int) -> tuple[list[int], int]:
        block_address = address // self.block
        return self.sets[block_address % self.num_sets], block_address

    def access(self, address: int) -> bool:
        """Access; returns True on hit.  Fills (LRU eviction) on miss."""
        tags, tag = self._locate(address)
        if tag in tags:
            tags.remove(tag)
            tags.append(tag)
            self.hits += 1
            return True
        self.misses += 1
        tags.append(tag)
        if len(tags) > self.assoc:
            tags.pop(0)
        return False

    def probe(self, address: int) -> bool:
        """Check residency without updating LRU state or statistics."""
        tags, tag = self._locate(address)
        return tag in tags

    def install(self, address: int) -> None:
        """Install a block without counting an access (prefetch fills)."""
        tags, tag = self._locate(address)
        if tag in tags:
            return
        tags.append(tag)
        if len(tags) > self.assoc:
            tags.pop(0)


class TLB:
    """Fully-set-associative-per-set TLB over fixed-size pages."""

    def __init__(self, entries: int = 32, assoc: int = 8, page: int = 8192):
        self.page = page
        self.cache = SetAssociativeCache(entries * page, assoc, page)

    def access(self, address: int) -> bool:
        return self.cache.access(address)

    @property
    def misses(self) -> int:
        return self.cache.misses


class MemoryHierarchy:
    """L1D + unified L2 + memory + DTLB with next-line prefetch."""

    def __init__(
        self,
        l1_size: int = 32768,
        l1_assoc: int = 2,
        l1_block: int = 32,
        l2_size: int = 524288,
        l2_assoc: int = 4,
        l2_block: int = 32,
        l2_hit_latency: int = 12,
        memory_latency: int = 120,
        tlb_entries: int = 32,
        tlb_assoc: int = 8,
        page_size: int = 8192,
        tlb_miss_latency: int = 30,
        next_line_prefetch: bool = True,
    ):
        self.l1 = SetAssociativeCache(l1_size, l1_assoc, l1_block)
        self.l2 = SetAssociativeCache(l2_size, l2_assoc, l2_block)
        self.tlb = TLB(tlb_entries, tlb_assoc, page_size)
        self.l2_hit_latency = l2_hit_latency
        self.memory_latency = memory_latency
        self.tlb_miss_latency = tlb_miss_latency
        self.next_line_prefetch = next_line_prefetch

    def access(self, address: int, is_store: bool = False) -> int:
        """Return extra latency beyond the pipelined L1 hit path.

        Write-allocate: stores fill on miss like loads, but their miss
        latency is not charged to the critical path (stores complete at
        retire and are not on the kernels' dependence chains).

        The next-line prefetcher runs on every access (a tagged/stream
        next-line scheme), which is what lets the paper state that it
        "eliminates virtually all data cache misses in the cipher kernel".
        """
        extra = 0
        if not self.tlb.access(address):
            extra += self.tlb_miss_latency
        if self.next_line_prefetch:
            next_line = address + self.l1.block
            if not self.l1.probe(next_line):
                self.l1.install(next_line)
                self.l2.install(next_line)
        if self.l1.access(address):
            return extra if not is_store else 0
        if self.l2.access(address):
            extra += self.l2_hit_latency
        else:
            extra += self.l2_hit_latency + self.memory_latency
        return extra if not is_store else 0

    def warm(self, start: int, length: int) -> None:
        """Install an address range into L1, L2 and the TLB without cost.

        Models data the key-setup code just wrote (S-boxes, round keys): the
        paper's kernels run immediately after setup on the same core, so
        those lines are cache-resident when timing begins.
        """
        block = self.l1.block
        address = start & ~(block - 1)
        while address < start + length:
            self.l1.install(address)
            self.l2.install(address)
            self.tlb.cache.install(address)
            address += block
