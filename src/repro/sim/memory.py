"""Flat little-endian memory for the RISC-A simulators.

The kernels and their data (S-box tables, key schedules, plaintext and
ciphertext buffers) live in one flat byte-addressed space.  Accesses must be
naturally aligned -- the Alpha faults on unaligned accesses and the cipher
kernels never need them, so the model simply rejects them.
"""

from __future__ import annotations


class Memory:
    """A fixed-size little-endian byte-addressable memory."""

    def __init__(self, size: int = 1 << 20):
        self.size = size
        self.data = bytearray(size)

    def _check(self, address: int, width: int) -> None:
        if address % width:
            raise ValueError(
                f"unaligned {width}-byte access at 0x{address:x}"
            )
        if not 0 <= address <= self.size - width:
            raise ValueError(f"access at 0x{address:x} outside memory")

    def read(self, address: int, width: int) -> int:
        self._check(address, width)
        return int.from_bytes(self.data[address : address + width], "little")

    def write(self, address: int, value: int, width: int) -> None:
        self._check(address, width)
        self.data[address : address + width] = (
            value & ((1 << (8 * width)) - 1)
        ).to_bytes(width, "little")

    def read_bytes(self, address: int, length: int) -> bytes:
        if not 0 <= address <= self.size - length:
            raise ValueError(f"access at 0x{address:x} outside memory")
        return bytes(self.data[address : address + length])

    def write_bytes(self, address: int, payload: bytes) -> None:
        if not 0 <= address <= self.size - len(payload):
            raise ValueError(f"access at 0x{address:x} outside memory")
        self.data[address : address + len(payload)] = payload

    def write_words32(self, address: int, words: list[int]) -> None:
        """Write a list of 32-bit words starting at ``address``."""
        for i, word in enumerate(words):
            self.write(address + 4 * i, word, 4)

    def read_words32(self, address: int, count: int) -> list[int]:
        return [self.read(address + 4 * i, 4) for i in range(count)]
