"""RISC-A simulators: functional execution, traces, and OoO timing models."""

from repro.sim.config import (
    ALPHA21264,
    BASE4W,
    BOTTLENECKS,
    DATAFLOW,
    DATAFLOW_BASEISA,
    EIGHTW_PLUS,
    FOURW,
    FOURW_PLUS,
    MachineConfig,
    bottleneck_config,
)
from repro.sim.machine import Machine, SimulationError, StreamingTrace
from repro.sim.memory import Memory
from repro.sim.stats import SimStats
from repro.sim.timing import simulate
from repro.sim.trace import (
    DEFAULT_CHUNK_SIZE,
    StaticInfo,
    Trace,
    TraceChunk,
    TraceSource,
)

__all__ = [
    "ALPHA21264",
    "BASE4W",
    "BOTTLENECKS",
    "DATAFLOW",
    "DATAFLOW_BASEISA",
    "EIGHTW_PLUS",
    "FOURW",
    "FOURW_PLUS",
    "MachineConfig",
    "bottleneck_config",
    "DEFAULT_CHUNK_SIZE",
    "Machine",
    "SimulationError",
    "StreamingTrace",
    "Memory",
    "SimStats",
    "simulate",
    "StaticInfo",
    "Trace",
    "TraceChunk",
    "TraceSource",
]
