"""RISC-A simulators: functional execution, traces, and OoO timing models."""

from repro.sim.config import (
    ALPHA21264,
    BASE4W,
    BOTTLENECKS,
    DATAFLOW,
    DATAFLOW_BASEISA,
    EIGHTW_PLUS,
    FOURW,
    FOURW_PLUS,
    MachineConfig,
    bottleneck_config,
)
from repro.sim.machine import Machine, SimulationError
from repro.sim.memory import Memory
from repro.sim.stats import SimStats
from repro.sim.timing import simulate
from repro.sim.trace import StaticInfo, Trace

__all__ = [
    "ALPHA21264",
    "BASE4W",
    "BOTTLENECKS",
    "DATAFLOW",
    "DATAFLOW_BASEISA",
    "EIGHTW_PLUS",
    "FOURW",
    "FOURW_PLUS",
    "MachineConfig",
    "bottleneck_config",
    "Machine",
    "SimulationError",
    "Memory",
    "SimStats",
    "simulate",
    "StaticInfo",
    "Trace",
]
