"""Shared name -> implementation registry for pluggable sim components.

The simulator has two plugin points: execution backends
(:mod:`repro.sim.backends`, functional execution) and timing engines
(:mod:`repro.sim.timing`, cycle modeling).  Both resolve names the same
way -- ``None`` means the registry default, a string is looked up, an
instance passes through -- and both report unknown names with the same
error shape (``unknown <kind> <name>; registered: ...``) so CLI and
config errors read uniformly regardless of which layer rejected them.
"""

from __future__ import annotations

from typing import Generic, TypeVar

T = TypeVar("T")


class Registry(Generic[T]):
    """Name -> implementation map with uniform resolution and errors.

    ``kind`` names the component class in error text ("backend",
    "timing engine"); ``default`` is the name resolved when callers pass
    ``None``.  Registered objects must expose a ``name`` attribute.
    """

    def __init__(self, kind: str, *, default: str | None = None):
        self.kind = kind
        self.default = default
        self._items: dict[str, T] = {}

    def register(self, item: T, *, replace: bool = False) -> None:
        """Register ``item`` under ``item.name``."""
        name = item.name
        if not replace and name in self._items:
            raise ValueError(f"{self.kind} {name!r} already registered")
        self._items[name] = item

    def names(self) -> tuple[str, ...]:
        """Registered names, sorted (for CLI choices and error text)."""
        return tuple(sorted(self._items))

    def get(self, item):
        """Resolve an argument: ``None``, a registered name, or an instance."""
        if item is None:
            item = self.default
        if isinstance(item, str):
            try:
                return self._items[item]
            except KeyError:
                raise ValueError(
                    f"unknown {self.kind} {item!r}; registered: "
                    f"{', '.join(self.names()) or '(none)'}"
                ) from None
        return item
