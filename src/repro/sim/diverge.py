"""First-divergence bisection over dynamic trace streams.

When two execution stacks that must be bit-identical (interpreter vs
compiled backend, generic vs specialized timing engine) stop agreeing,
"the traces differ" is useless forensics.  This module answers *where
first*: it walks two :class:`~repro.sim.trace.TraceSource` streams in
lockstep, compares aligned windows with C-level array equality (a
matching megabyte costs one comparison, not a Python loop), and on the
first mismatching window binary-searches the prefix down to the exact
first differing trace position -- then reports which column diverged
(``seq``, ``addrs``, ``values`` or ``taken``), both values, the static
instruction's disassembly, and the surrounding trace context.

The equivalence suites use :func:`assert_sources_identical` so a
bit-identity failure names the exact instruction, and
``python -m repro.tools.diff bisect`` is the standalone CLI.  Works over
materialized :class:`~repro.sim.trace.Trace` objects and single-pass
:class:`~repro.sim.machine.StreamingTrace` generators alike, so a
divergence deep in a gigabyte-scale streamed session is found without
ever materializing either trace.
"""

from __future__ import annotations

from array import array
from collections import deque
from dataclasses import dataclass, field

from repro.sim.trace import DEFAULT_CHUNK_SIZE, TraceSource

#: Trace columns in report priority: a seq divergence makes the other
#: columns meaningless at the same position, addresses outrank values.
FIELDS = ("seq", "addrs", "values", "taken")


@dataclass
class Divergence:
    """The first point where two trace streams disagree.

    ``field`` is one of :data:`FIELDS`, or ``"length"`` when one stream
    is a strict prefix of the other (``position`` is then the length of
    the shorter stream and the missing side's value is ``None``).
    """

    position: int
    field: str
    a_value: int | None
    b_value: int | None
    a_text: str = ""
    b_text: str = ""
    context: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        return format_divergence(self)


def format_divergence(divergence: Divergence,
                      a_label: str = "a", b_label: str = "b") -> str:
    """Render a divergence as the multi-line forensic message."""
    d = divergence
    if d.field == "length":
        longer = b_label if d.a_value is None else a_label
        lines = [
            f"first divergence at trace position {d.position}: "
            f"{longer} continues past the end of the other stream",
            f"  {a_label}: "
            + ("<end of trace>" if d.a_value is None
               else f"static #{d.a_value} {d.a_text}"),
            f"  {b_label}: "
            + ("<end of trace>" if d.b_value is None
               else f"static #{d.b_value} {d.b_text}"),
        ]
    else:
        lines = [
            f"first divergence at trace position {d.position}, "
            f"column '{d.field}':",
            f"  {a_label}: {_render_value(d.field, d.a_value)}"
            + (f"  ({d.a_text})" if d.a_text else ""),
            f"  {b_label}: {_render_value(d.field, d.b_value)}"
            + (f"  ({d.b_text})" if d.b_text else ""),
        ]
    if d.context:
        lines.append("  context:")
        lines.extend(f"    {line}" for line in d.context)
    return "\n".join(lines)


def _render_value(field_name: str, value) -> str:
    if value is None:
        return "<absent>"
    if field_name in ("addrs", "values"):
        return f"0x{value:016x}"
    if field_name == "taken":
        return "taken" if value else "not taken"
    return f"static #{value}"


class _Cursor:
    """Pull-based window reader over a trace source's chunk stream.

    Chunk boundaries of the two sources need not line up (a streamed
    run chunks at ``chunk_size``; a materialized trace may arrive as one
    chunk), so each side buffers pending chunk tails and serves windows
    of whatever length the comparison asks for.
    """

    def __init__(self, source: TraceSource, chunk_size: int) -> None:
        self.program = source.program
        self._chunks = source.chunks(chunk_size)
        self._seq = array("q")
        self._addrs = array("Q")
        self._values: array | None = None
        self._taken: array | None = None
        self._primed = False
        self.exhausted = False

    def _pull(self) -> bool:
        chunk = next(self._chunks, None)
        if chunk is None:
            self.exhausted = True
            return False
        if not self._primed:
            self._primed = True
            if chunk.values is not None:
                self._values = array("Q")
            if chunk.taken is not None:
                self._taken = array("b")
        self._seq.extend(chunk.seq)
        self._addrs.extend(chunk.addrs)
        if self._values is not None and chunk.values is not None:
            self._values.extend(chunk.values)
        if self._taken is not None and chunk.taken is not None:
            self._taken.extend(chunk.taken)
        return True

    def fill(self, want: int) -> int:
        """Buffer at least ``want`` entries; returns what is available."""
        while len(self._seq) < want and not self.exhausted:
            self._pull()
        return len(self._seq)

    def window(self, n: int) -> dict[str, array | None]:
        return {
            "seq": self._seq[:n],
            "addrs": self._addrs[:n],
            "values": None if self._values is None else self._values[:n],
            "taken": None if self._taken is None else self._taken[:n],
        }

    def advance(self, n: int) -> None:
        self._seq = self._seq[n:]
        self._addrs = self._addrs[n:]
        if self._values is not None:
            self._values = self._values[n:]
        if self._taken is not None:
            self._taken = self._taken[n:]


def _first_mismatch(column_a: array, column_b: array, n: int) -> int | None:
    """Binary-search the first index in ``[0, n)`` where columns differ.

    Each probe is one C-level prefix comparison; a full window equality
    check costs the same single comparison at ``mid = n``.
    """
    if column_a[:n] == column_b[:n]:
        return None
    lo, hi = 0, n - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if column_a[:mid + 1] == column_b[:mid + 1]:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _text(program, static_index) -> str:
    instructions = program.instructions
    if static_index is not None and 0 <= static_index < len(instructions):
        return instructions[static_index].render()
    return ""


def first_divergence(
    a: TraceSource,
    b: TraceSource,
    chunk_size: int | None = None,
    context: int = 3,
) -> Divergence | None:
    """Locate the first trace position where two sources disagree.

    Returns ``None`` when the streams are bit-identical (same length,
    same columns everywhere).  Columns only one side records (``values``
    from a run without value recording, explicit ``taken`` flags from a
    synthetic trace) are skipped -- presence asymmetry is a recording
    choice, not an execution divergence.
    """
    chunk_size = chunk_size or DEFAULT_CHUNK_SIZE
    cursor_a = _Cursor(a, chunk_size)
    cursor_b = _Cursor(b, chunk_size)
    position = 0
    # Recent positions kept for the "context" lines of the report.
    tail: deque[tuple[int, int]] = deque(maxlen=max(context, 0))

    while True:
        have_a = cursor_a.fill(chunk_size)
        have_b = cursor_b.fill(chunk_size)
        n = min(have_a, have_b)
        if n == 0:
            if have_a == have_b:
                return None
            longer = cursor_a if have_a else cursor_b
            seq0 = longer.window(1)["seq"][0]
            text = _text(longer.program, seq0)
            return Divergence(
                position=position,
                field="length",
                a_value=seq0 if have_a else None,
                b_value=seq0 if have_b else None,
                a_text=text if have_a else "",
                b_text=text if have_b else "",
                context=_context_lines(tail, cursor_a.program),
            )
        window_a = cursor_a.window(n)
        window_b = cursor_b.window(n)
        first: int | None = None
        first_field = ""
        for name in FIELDS:
            column_a, column_b = window_a[name], window_b[name]
            if column_a is None or column_b is None:
                continue
            limit = n if first is None else first + 1
            index = _first_mismatch(column_a, column_b, limit)
            if index is not None and (first is None or index < first
                                      or (index == first and not first_field)):
                first, first_field = index, name
        if first is not None:
            for offset in range(max(first - (tail.maxlen or 0), 0), first):
                tail.append((position + offset, window_a["seq"][offset]))
            divergence = Divergence(
                position=position + first,
                field=first_field,
                a_value=window_a[first_field][first],
                b_value=window_b[first_field][first],
                a_text=_text(cursor_a.program, window_a["seq"][first]),
                b_text=_text(cursor_b.program, window_b["seq"][first]),
                context=_context_lines(tail, cursor_a.program),
            )
            return divergence
        for offset in range(max(n - (tail.maxlen or 0), 0), n):
            tail.append((position + offset, window_a["seq"][offset]))
        cursor_a.advance(n)
        cursor_b.advance(n)
        position += n


def _context_lines(tail, program) -> list[str]:
    return [
        f"[{trace_position}] static #{static_index} "
        f"{_text(program, static_index)}"
        for trace_position, static_index in tail
    ]


def assert_sources_identical(
    a: TraceSource,
    b: TraceSource,
    a_label: str = "a",
    b_label: str = "b",
    chunk_size: int | None = None,
) -> None:
    """Equivalence-suite hook: raise with the exact first divergence.

    A passing call costs one lockstep pass with array-equality windows;
    a failing one names the first differing trace position, column and
    instruction instead of dumping two traces.
    """
    divergence = first_divergence(a, b, chunk_size=chunk_size)
    if divergence is not None:
        raise AssertionError(
            f"{a_label} and {b_label} diverge: "
            f"{format_divergence(divergence, a_label, b_label)}"
        )


def first_schedule_divergence(entries_a, entries_b):
    """First index where two per-instruction schedule/value lists differ.

    A generic helper for timing-engine forensics: pass any parallel
    per-dynamic-instruction sequences (issue cycles, completion cycles,
    per-entry stall attributions) and get ``(index, a_value, b_value)``
    back, or ``None`` when they match.  Length mismatch reports the
    first missing index with ``None`` for the absent side.
    """
    n = min(len(entries_a), len(entries_b))
    for index in range(n):
        if entries_a[index] != entries_b[index]:
            return index, entries_a[index], entries_b[index]
    if len(entries_a) != len(entries_b):
        longer = entries_a if len(entries_a) > n else entries_b
        return (n,
                longer[n] if longer is entries_a else None,
                longer[n] if longer is entries_b else None)
    return None
