"""Per-program compiled execution backend.

Translates a finalized :class:`~repro.isa.program.Program` into one
specialized Python generator function: every static instruction becomes
a handful of straight-line statements (operands constant-folded,
registers pinned in locals), basic blocks dispatch through a small
``while``/``elif`` chain, and the dynamic trace is staged
block-at-a-time with constant tuples.  The generated source is compiled
once and cached by program digest, so repeated sessions of the same
kernel pay zero codegen cost.

The output contract is bit-identical to the interpreter backend on every
successful execution: same ``TraceChunk`` entries *and boundaries*, same
final registers, memory and ``instructions_executed``
(``tests/sim/test_backend_equivalence.py`` is the oracle).  Failure
paths raise the same ``SimulationError`` messages, but may differ in how
much of the failing basic block's side effects landed, because the
runaway-instruction check runs once per block rather than once per
instruction; see ``docs/backends.md``.

Generated sources are registered in :mod:`linecache` under
``<repro-compiled:...>`` filenames so tracebacks show real lines and the
sampling profiler can attribute generated-code frames to the
``functional`` bucket (codegen itself lands in the ``compile`` bucket).
"""

from __future__ import annotations

import linecache
import re
import sys
import time
from array import array
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.isa.analysis.lattices import (
    UNKNOWN_WIDTH,
    WRITES_DEST,
    const_join,
    infer_widths,
    lit_width,
    make_const_step,
    make_tz_step,
    make_width_step,
    tz_of_int,
    zapnot_mask,
)
from repro.isa.analysis.solver import (
    BRANCH_CODES,
    IMPLEMENTED_CODES,
    block_successors,
    infer_dataflow,
    split_blocks,
)
from repro.sim.trace import (
    ADDR_TYPECODE,
    SEQ_TYPECODE,
    VALUE_TYPECODE,
    TraceChunk,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import Machine

M32 = 0xFFFFFFFF
M64 = 0xFFFFFFFFFFFFFFFF
_MSB = 0x8000000000000000

#: Generated code reads memory through ``memoryview.cast`` (native byte
#: order); on a big-endian host we delegate to the interpreter instead.
_LITTLE = sys.byteorder == "little"

# The elision analyses (basic blocks, width / trailing-zeros / constant
# lattices) live in the shared framework under ``repro.isa.analysis``;
# the underscore aliases keep this module's generated-code emitters
# reading as before.  The transfer functions are consumed here verbatim,
# so elision decisions -- and every ``CompileReport`` counter -- are
# exactly what they were when the analyses were defined in this file.
_UNKNOWN = UNKNOWN_WIDTH
_BRANCH_CODES = BRANCH_CODES
_IMPLEMENTED = IMPLEMENTED_CODES
_WRITES_DEST = WRITES_DEST
_split_blocks = split_blocks
_block_successors = block_successors
_infer_dataflow = infer_dataflow
_infer_widths = infer_widths
_lit_width = lit_width
_zapnot_mask = zapnot_mask
_tz_of_int = tz_of_int
_const_join = const_join
_make_width_step = make_width_step
_make_tz_step = make_tz_step
_make_const_step = make_const_step

_LOADS = {30: ("LDQ", 8, 8), 31: ("LDL", 4, 4),
          32: ("LDWU", 2, 2), 33: ("LDBU", 1, 1)}
_STORES = {34: ("STQ", 8, 8), 35: ("STL", 4, 4),
           36: ("STW", 2, 2), 37: ("STB", 1, 1)}


def _grp(x: int, ctrl: int, width: int) -> int:
    """GRPL/GRPQ (Shi & Lee) bit-gather, shared by all generated code."""
    low = high = 0
    low_count = high_count = 0
    for i in range(width):
        bit = (x >> i) & 1
        if (ctrl >> i) & 1:
            high |= bit << high_count
            high_count += 1
        else:
            low |= bit << low_count
            low_count += 1
    return low | (high << low_count)


def _xbox(operand: int, perm_map: int, base_bit: int) -> int:
    """XBOX 8-bit permutation lookup, shared by all generated code."""
    result = 0
    for j in range(8):
        bit = (operand >> ((perm_map >> (6 * j)) & 0x3F)) & 1
        result |= bit << (base_bit + j)
    return result


def _drain(
    seq: list,
    addrs: list,
    values: "list | None",
    chunk_limit: int,
    trace_base: int,
) -> Iterator[TraceChunk]:
    """Carve exactly ``chunk_limit``-sized chunks off the staged lists.

    Generated code stages a whole basic block before checking the limit,
    so the staged lists can run past it; slicing here restores the exact
    interpreter chunk boundaries (every chunk full except the final
    partial).  Returns the updated ``trace_base`` via StopIteration so
    callers use ``trace_base = yield from _drain(...)``.
    """
    while len(seq) >= chunk_limit:
        yield TraceChunk(
            seq=array(SEQ_TYPECODE, seq[:chunk_limit]),
            addrs=array(ADDR_TYPECODE, addrs[:chunk_limit]),
            start=trace_base,
            values=(None if values is None
                    else array(VALUE_TYPECODE, values[:chunk_limit])),
        )
        del seq[:chunk_limit]
        del addrs[:chunk_limit]
        if values is not None:
            del values[:chunk_limit]
        trace_base += chunk_limit
    return trace_base


class CompiledBackend:
    """Backend that executes digest-cached per-program generated code."""

    name = "compiled"

    def execute(
        self,
        machine: "Machine",
        *,
        chunk_limit: int,
        record_trace: bool,
        record_values: bool,
        max_instructions: int,
    ) -> Iterator[TraceChunk]:
        if not _LITTLE or machine.memory.size & 7:
            # Word access goes through memoryview.cast, which needs a
            # little-endian host and an 8-byte-divisible buffer.  Every
            # Memory in the repo is a power of two; for exotic sizes the
            # interpreter is the (bit-identical) fallback.
            from repro.sim.backends.interpreter import _interpret

            return _interpret(
                machine, chunk_limit, record_trace, record_values,
                max_instructions,
            )
        fn = compiled_function(machine, record_trace, record_values)
        return fn(machine, chunk_limit, max_instructions)


_CODE_CACHE: dict[tuple[str, bool, bool, int], Callable[..., Any]] = {}

#: Optimization-counter keys every compile report carries (the codegen
#: increments these at each elision/fold decision point).
COUNTER_KEYS = (
    "masks_elided",
    "bounds_checks_elided",
    "align_checks_elided",
    "constants_folded",
    "branches_folded",
    "sbox_index_folds",
    "and_masks_folded",
)


@dataclass
class CompileReport:
    """What one program compilation did: counters, size, wall time.

    One report per generated function (same key as ``_CODE_CACHE``);
    ``source_cache_hits`` counts later requests served from the cache.
    Surfaced as ``compile.*`` metrics (:func:`record_compile_metrics`),
    ``backend`` ledger events, and ``riscasim --backend compiled
    --explain``.
    """

    digest: str
    record_trace: bool
    record_values: bool
    mem_size: int
    instructions: int
    blocks: int
    source_lines: int
    compile_seconds: float
    counters: dict[str, int] = field(default_factory=dict)
    source_cache_hits: int = 0

    @property
    def mode(self) -> str:
        return (("t" if self.record_trace else "-")
                + ("v" if self.record_values else "-"))


_COMPILE_REPORTS: dict[tuple[str, bool, bool, int], CompileReport] = {}


def cache_info() -> dict[str, int]:
    """Size of the digest-keyed generated-function cache (for tests)."""
    return {"size": len(_CODE_CACHE)}


def cache_clear() -> None:
    """Drop all cached generated functions (for tests/benchmarks)."""
    _CODE_CACHE.clear()
    _COMPILE_REPORTS.clear()


def compile_reports() -> list[CompileReport]:
    """Every compilation this process performed, in compile order."""
    return list(_COMPILE_REPORTS.values())


def record_compile_metrics(registry) -> None:
    """Fold the process's compile reports into a metrics registry.

    ``compile.programs`` / ``compile.source_cache_hits`` counters, one
    ``compile.<counter>`` counter per optimization kind, and the total
    codegen wall time as ``compile.wall_seconds``.
    """
    reports = compile_reports()
    registry.counter("compile.programs").inc(len(reports))
    registry.counter("compile.source_cache_hits").inc(
        sum(report.source_cache_hits for report in reports)
    )
    for key in COUNTER_KEYS:
        registry.counter(f"compile.{key}").inc(
            sum(report.counters.get(key, 0) for report in reports)
        )
    registry.gauge("compile.wall_seconds").set(
        sum(report.compile_seconds for report in reports)
    )


def explain_table(reports: "list[CompileReport] | None" = None) -> str:
    """The ``riscasim --backend compiled --explain`` report table."""
    reports = compile_reports() if reports is None else reports
    if not reports:
        return "compiled backend: no programs compiled in this process"
    lines = [
        f"compiled backend: {len(reports)} program(s), "
        f"{sum(r.compile_seconds for r in reports) * 1e3:.1f} ms codegen, "
        f"{sum(r.source_cache_hits for r in reports)} source-cache hit(s)",
        f"  {'program':<10} {'mode':<4} {'instr':>6} {'lines':>6} "
        f"{'ms':>6} {'hits':>5}  optimizations",
    ]
    for report in reports:
        opts = ", ".join(
            f"{key.replace('_', ' ')} {report.counters[key]}"
            for key in COUNTER_KEYS if report.counters.get(key)
        ) or "none"
        lines.append(
            f"  {report.digest[:8]:<10} {report.mode:<4} "
            f"{report.instructions:>6} {report.source_lines:>6} "
            f"{report.compile_seconds * 1e3:>6.1f} "
            f"{report.source_cache_hits:>5}  {opts}"
        )
    return "\n".join(lines)


def _publish(type: str, data: dict) -> None:
    """Ledger event on the process's active bus, if one is installed.

    Imported lazily: :mod:`repro.obs` is a heavier import than this
    module and is only needed when something actually observes.
    """
    from repro.obs.events import publish_event

    publish_event("backend", type, data)


def compiled_function(
    machine: "Machine", record_trace: bool, record_values: bool
) -> Callable[..., Any]:
    """The generated generator function for this program+recording mode.

    Cached by ``(program.digest(), record_trace, record_values,
    memory.size)`` so every :class:`Machine` over the same program and
    memory geometry shares one compilation.  The memory size is part of
    the key because bounds-check elision proves addresses in range
    against it at codegen time.
    """
    key = (
        machine.program.digest(), record_trace, record_values,
        machine.memory.size,
    )
    fn = _CODE_CACHE.get(key)
    if fn is None:
        fn = _compile(machine, record_trace, record_values, key[0])
        _CODE_CACHE[key] = fn
        report = _COMPILE_REPORTS.get(key)
        if report is not None:
            _publish("compile", {
                "digest": key[0][:12],
                "mode": report.mode,
                "instructions": report.instructions,
                "source_lines": report.source_lines,
                "seconds": round(report.compile_seconds, 6),
                **{k: report.counters.get(k, 0) for k in COUNTER_KEYS},
            })
    else:
        report = _COMPILE_REPORTS.get(key)
        if report is not None:
            report.source_cache_hits += 1
        _publish("codegen-cache-hit", {"digest": key[0][:12]})
    return fn


def generated_source(
    machine: "Machine",
    record_trace: bool = True,
    record_values: bool = False,
) -> str:
    """The Python source the backend would execute (docs and tests)."""
    source, _counters, _blocks = _generate_source(
        machine, record_trace, record_values, "_compiled_run"
    )
    return source


def _compile(
    machine: "Machine",
    record_trace: bool,
    record_values: bool,
    digest: str,
) -> Callable[..., Any]:
    from repro.sim.machine import SimulationError, _ZAPNOT_MASKS

    began = time.perf_counter()
    func_name = f"_compiled_{digest[:8]}"
    source, counters, blocks = _generate_source(
        machine, record_trace, record_values, func_name
    )
    filename = (
        f"<repro-compiled:{digest[:8]}:"
        f"{'t' if record_trace else 'f'}{'v' if record_values else 'f'}:"
        f"{machine.memory.size}>"
    )
    # Register the source so tracebacks and the profiler see real lines.
    linecache.cache[filename] = (
        len(source), None, source.splitlines(True), filename,
    )
    namespace: dict[str, Any] = {
        "SimulationError": SimulationError,
        "TraceChunk": TraceChunk,
        "array": array,
        "SEQ_T": SEQ_TYPECODE,
        "ADDR_T": ADDR_TYPECODE,
        "VAL_T": VALUE_TYPECODE,
        "_drain": _drain,
        "_grp": _grp,
        "_xbox": _xbox,
        "_ZAPNOT": _ZAPNOT_MASKS,
    }
    exec(compile(source, filename, "exec"), namespace)
    _COMPILE_REPORTS[
        (digest, record_trace, record_values, machine.memory.size)
    ] = CompileReport(
        digest=digest,
        record_trace=record_trace,
        record_values=record_values,
        mem_size=machine.memory.size,
        instructions=len(machine.code),
        blocks=blocks,
        source_lines=source.count("\n"),
        compile_seconds=time.perf_counter() - began,
        counters=counters,
    )
    return namespace[func_name]


def _generate_source(
    machine: "Machine",
    record_trace: bool,
    record_values: bool,
    func_name: str,
) -> "tuple[str, dict[str, int], int]":
    """Generate the source plus its optimization counters and block count.

    The counters (keys: :data:`COUNTER_KEYS`) are incremented at every
    elision/fold decision the emitters take, so a
    :class:`CompileReport` explains exactly what specialization bought
    for this program.
    """
    code, dest = machine.code, machine.dest
    src1, src2 = machine.src1, machine.src2
    lit, disp, target = machine.lit, machine.disp, machine.target
    bsel = machine.bsel
    n = len(code)

    lines: list[str] = []
    counters: dict[str, int] = {key: 0 for key in COUNTER_KEYS}

    def count(key: str, by: int = 1) -> None:
        counters[key] += by

    def w(indent: int, text: str = "") -> None:
        lines.append(("    " * indent + text) if text else "")

    w(0, f"def {func_name}(machine, chunk_limit, max_instructions):")
    w(1, "regs = machine.regs")
    w(1, "regs[31] = 0")
    if n == 0:
        w(1, "raise SimulationError('fell off program end at pc=0')")
        w(1, "if False:")
        w(2, "yield None")
        return "\n".join(lines) + "\n", counters, 0

    blocks, block_of = _split_blocks(code, target, n)
    succs = _block_successors(blocks, code, target, n)
    step = _make_width_step(machine)
    widths = _infer_widths(blocks, block_of, succs, step)
    tz_step = _make_tz_step(machine)
    tzs = _infer_dataflow(
        blocks, block_of, succs, tz_step, top=0, join=min,
    )
    const_step = _make_const_step(machine)
    consts = _infer_dataflow(
        blocks, block_of, succs, const_step,
        top=None, join=_const_join,  # type: ignore[arg-type]
    )
    # Bounds proofs below compare against the machine's memory size, so
    # the generated function is specialized to it (part of the cache key).
    mem_size = machine.memory.size

    # Register-usage scan: which slots to pin in locals / write back.
    reads: set[int] = set()
    writes: set[int] = set()
    for i in range(n):
        c = code[i]
        if c not in _IMPLEMENTED:
            continue
        reads.add(src1[i])
        reads.add(src2[i])
        if c in (54, 55):  # ROLXL/RORXL xor into their destination
            reads.add(dest[i])
        if c in _WRITES_DEST:
            writes.add(dest[i])
    reads.discard(31)
    writes.discard(31)
    pinned = sorted(reads | writes)

    # The block bodies are generated first so the preamble only sets up
    # what they actually use (memoryview casts, bounds limits, tables).
    need_mv: set[int] = set()
    need_lims: set[int] = set()
    need_zap = False
    body: list[str] = []

    def wb(indent: int, text: str) -> None:
        body.append("    " * indent + text)

    def R(slot: int) -> str:
        return "0" if slot == 31 else f"r{slot}"

    def addr_code(
        i: int, state: list, tz: list, cst: list
    ) -> "tuple[list[str], str, int, int, str]":
        """Effective-address statements, its name, and proved facts.

        Returns ``(stmts, name, bound, align, expr)``: the address is
        known to be <= ``bound`` with its low ``align`` bits zero, so
        callers can elide range and alignment checks the proof covers
        (and inline ``expr`` when the temporary itself is unneeded).
        """
        base, dp = src2[i], disp[i]
        a = f"a{i}"
        bv = 0 if base == 31 else cst[base]
        if bv is not None:
            if base != 31:
                count("constants_folded")
            val = (bv + dp) & M64
            expr = f"{val:#x}"
            return [], expr, val, _tz_of_int(val), expr
        rb = R(base)
        wb2 = state[base]
        atz = min(tz[base], _tz_of_int(dp)) if dp else tz[base]
        if dp == 0:
            if wb2 <= 64:
                expr, bound = rb, (1 << wb2) - 1
            else:
                expr, bound = f"{rb} & {M64:#x}", M64
        elif wb2 != _UNKNOWN and dp > 0 and max(wb2, dp.bit_length()) < 64:
            expr, bound = f"{rb} + {dp}", (1 << wb2) - 1 + dp
        else:
            expr, bound = f"({rb} + {dp}) & {M64:#x}", M64
        if not record_trace and expr == rb:
            # No trace entry will quote the address and the register
            # itself is the address: skip the temporary entirely.
            return [], rb, bound, atz, rb
        return [f"{a} = {expr}"], a, bound, atz, expr

    def operand(slot: int, state: list, cst: list) -> "tuple[str, int]":
        """Expression and width for a register read (const-folded)."""
        if slot == 31:
            return "0", 0
        v = cst[slot]
        if v is not None:
            count("constants_folded")
            return str(v), (v.bit_length() if v >= 0 else _UNKNOWN)
        return f"r{slot}", state[slot]

    def instr_stmts(
        i: int, state: list, tz: list, cst: list
    ) -> "tuple[list[str], str | None]":
        nonlocal need_zap
        c = code[i]
        D = f"r{dest[i]}"
        A, w1 = operand(src1[i], state, cst)
        L = lit[i]
        if L is not None:
            B, wb_ = str(L), _lit_width(L)
        else:
            B, wb_ = operand(src2[i], state, cst)
        out: list[str] = []
        addr: "str | None" = None
        if c == 7:  # XOR
            if A == "0":
                out = [f"{D} = {B}"]
            elif B == "0":
                out = [f"{D} = {A}"]
            else:
                out = [f"{D} = {A} ^ {B}"]
        elif c == 6:  # BIS
            if A == "0":
                out = [f"{D} = {B}"]
            elif B == "0":
                out = [f"{D} = {A}"]
            else:
                out = [f"{D} = {A} | {B}"]
        elif c == 5:  # AND
            if A == "0" or B == "0":
                out = [f"{D} = 0"]
            elif (L is not None and w1 <= 64
                    and (L & M64) & ((1 << w1) - 1) == (1 << w1) - 1):
                count("masks_elided")
                out = [f"{D} = {A}"]  # mask covers the proved width
            else:
                out = [f"{D} = {A} & {B}"]
        elif c in (1, 3):  # ADDQ / ADDL
            bits = 64 if c == 1 else 32
            mask = M64 if c == 1 else M32
            if A == "0":
                expr = B
            elif B == "0":
                expr = A
            else:
                expr = f"{A} + {B}"
            if max(w1, wb_) < bits:
                count("masks_elided")
                out = [f"{D} = {expr}"]
            elif expr in (A, B):
                out = [f"{D} = {expr} & {mask:#x}"]
            else:
                out = [f"{D} = ({expr}) & {mask:#x}"]
        elif c in (2, 4):  # SUBQ / SUBL
            bits = 64 if c == 2 else 32
            mask = M64 if c == 2 else M32
            if B == "0" and w1 <= bits:
                count("masks_elided")
                out = [f"{D} = {A}"]
            else:
                out = [f"{D} = ({A} - {B}) & {mask:#x}"]
        elif c == 8:  # BIC
            if L is not None:
                out = [f"{D} = {A} & {(~L) & M64:#x}"]
            elif B == "0":
                if w1 <= 64:
                    count("masks_elided")
                    out = [f"{D} = {A}"]
                else:
                    out = [f"{D} = {A} & {M64:#x}"]
            else:
                out = [f"{D} = {A} & ~{B} & {M64:#x}"]
        elif c == 9:  # ORNOT
            if L is not None:
                inner = f"{(~L) & M64:#x}"
            else:
                inner = f"(~{B} & {M64:#x})"
            if w1 <= 64:
                count("masks_elided")
                out = [f"{D} = {A} | {inner}"]
            else:
                out = [f"{D} = ({A} | {inner}) & {M64:#x}"]
        elif c == 10:  # SLL
            if L is not None:
                s = L & 63
                if s == 0:
                    if w1 <= 64:
                        count("masks_elided")
                        out = [f"{D} = {A}"]
                    else:
                        out = [f"{D} = {A} & {M64:#x}"]
                elif w1 + s <= 64:
                    count("masks_elided")
                    out = [f"{D} = {A} << {s}"]
                else:
                    out = [f"{D} = ({A} << {s}) & {M64:#x}"]
            else:
                out = [f"{D} = ({A} << ({B} & 63)) & {M64:#x}"]
        elif c == 11:  # SRL
            if L is not None:
                s = L & 63
                out = [f"{D} = {A}" if s == 0 else f"{D} = {A} >> {s}"]
            else:
                out = [f"{D} = {A} >> ({B} & 63)"]
        elif c == 12:  # SRA
            sh = str(L & 63) if L is not None else f"({B} & 63)"
            if w1 <= 63:
                count("masks_elided")
                if L is not None and L & 63 == 0:
                    out = [f"{D} = {A}"]
                else:
                    out = [f"{D} = {A} >> {sh}"]
            else:
                out = [
                    f"t = {A}",
                    f"if t & {_MSB:#x}:",
                    f"    t -= {1 << 64:#x}",
                    f"{D} = (t >> {sh}) & {M64:#x}",
                ]
        elif c == 13:  # MULL
            am = A if w1 <= 32 else f"({A} & {M32:#x})"
            if L is not None:
                bv = L & M32
                bm, wbm = str(bv), bv.bit_length()
            else:
                bm = B if wb_ <= 32 else f"({B} & {M32:#x})"
                wbm = min(wb_, 32)
            if min(w1, 32) + wbm <= 32:
                count("masks_elided")
                out = [f"{D} = {am} * {bm}"]
            else:
                out = [f"{D} = ({am} * {bm}) & {M32:#x}"]
        elif c == 14:  # MULQ
            if w1 + wb_ <= 64:
                count("masks_elided")
                out = [f"{D} = {A} * {B}"]
            else:
                out = [f"{D} = ({A} * {B}) & {M64:#x}"]
        elif c == 15:
            out = [f"{D} = 1 if {A} == {B} else 0"]
        elif c == 16:
            out = [f"{D} = 1 if {A} < {B} else 0"]
        elif c == 17:
            out = [f"{D} = 1 if {A} <= {B} else 0"]
        elif c in (18, 19):  # CMPLT / CMPLE (signed)
            cmp = "<" if c == 18 else "<="
            if w1 <= 63:
                count("masks_elided")
                left = A
            else:
                out += [
                    f"t = {A}",
                    f"if t & {_MSB:#x}:",
                    f"    t -= {1 << 64:#x}",
                ]
                left = "t"
            if L is not None:
                right = str(L - (1 << 64) if L & _MSB else L)
            elif wb_ <= 63:
                count("masks_elided")
                right = B
            else:
                out += [
                    f"u = {B}",
                    f"if u & {_MSB:#x}:",
                    f"    u -= {1 << 64:#x}",
                ]
                right = "u"
            out.append(f"{D} = 1 if {left} {cmp} {right} else 0")
        elif c == 20:  # EXTBL
            if L is not None:
                s = (L & 7) * 8
                if s == 0 and w1 <= 8:
                    count("masks_elided")
                out = [f"{D} = ({A} >> {s}) & 0xFF" if s
                       else (f"{D} = {A}" if w1 <= 8
                             else f"{D} = {A} & 0xFF")]
            else:
                out = [f"{D} = ({A} >> (({B} & 7) * 8)) & 0xFF"]
        elif c == 21:  # INSBL
            am = A if w1 <= 8 else f"({A} & 0xFF)"
            if L is not None:
                s = (L & 7) * 8
                out = [f"{D} = {am} << {s}" if s else f"{D} = {am}"]
            else:
                out = [f"{D} = {am} << (({B} & 7) * 8)"]
        elif c == 22:  # ZAPNOT
            if L is not None:
                mask = _zapnot_mask(L & 0xFF)
                if w1 <= 64 and mask & ((1 << w1) - 1) == (1 << w1) - 1:
                    count("masks_elided")
                    out = [f"{D} = {A}"]
                else:
                    out = [f"{D} = {A} & {mask:#x}"]
            else:
                need_zap = True
                out = [f"{D} = {A} & _zap[{B} & 0xFF]"]
        elif c in (23, 24):  # S4ADDQ / S8ADDQ
            scale = 4 if c == 23 else 8
            extra = 2 if c == 23 else 3
            prod = f"{A} * {scale}"
            expr = prod if B == "0" else f"{prod} + {B}"
            if max(w1 + extra, wb_) < 64:
                count("masks_elided")
                out = [f"{D} = {expr}"]
            else:
                out = [f"{D} = ({expr}) & {M64:#x}"]
        elif c in (25, 26):  # CMOVEQ / CMOVNE
            if A == "0":
                out = [f"{D} = {B}"] if c == 25 else []
            else:
                test = "==" if c == 25 else "!="
                out = [f"if {A} {test} 0:", f"    {D} = {B}"]
        elif c == 27:  # LDA
            base, dp = src2[i], disp[i]
            bv = 0 if base == 31 else cst[base]
            if bv is not None:
                out = [f"{D} = {(bv + dp) & M64:#x}"]
            else:
                rb = R(base)
                wb2 = state[base]
                if dp == 0:
                    if wb2 <= 64:
                        count("masks_elided")
                    out = [f"{D} = {rb}" if wb2 <= 64
                           else f"{D} = {rb} & {M64:#x}"]
                elif (wb2 != _UNKNOWN and dp > 0
                      and max(wb2, dp.bit_length()) < 64):
                    count("masks_elided")
                    out = [f"{D} = {rb} + {dp}"]
                else:
                    out = [f"{D} = ({rb} + {dp}) & {M64:#x}"]
        elif c == 28:  # LDIQ
            out = [f"{D} = {L}"]
        elif c in (30, 31, 32, 33):  # loads
            al, av, bound, atz, aex = addr_code(i, state, tz, cst)
            out = list(al)
            name, size, shift = {
                30: ("LDQ", 8, 3), 31: ("LDL", 4, 2),
                32: ("LDWU", 2, 1), 33: ("LDBU", 1, 0),
            }[c]
            conds = []
            if atz < shift:
                conds.append(f"{av} & {size - 1}")
            elif shift:
                count("align_checks_elided")
            if bound > mem_size - size:
                need_lims.add(size)
                conds.append(f"{av} > lim{size}")
            else:
                count("bounds_checks_elided")
            if not record_trace and not conds and al:
                # Checks are proved away and nothing quotes the address:
                # fold the computation into the access itself.
                out, av = [], f"({aex})"
            if conds:
                out += [
                    f"if {' or '.join(conds)}:",
                    f"    raise SimulationError('{name} at 0x%x (pc {i})'"
                    f" % {av})",
                ]
            if c == 33:
                out.append(f"{D} = data[{av}]")
            else:
                need_mv.add(size)
                out.append(f"{D} = mv{size}[{av} >> {shift}]")
            addr = av
            base = src2[i]
            if (disp[i] == 0 and base != 31 and cst[base] is None
                    and state[base] <= 64):
                # Past this point the base register itself was a valid
                # address (checked or proved), so it is < mem_size.
                state[base] = min(
                    state[base], (mem_size - size).bit_length()
                )
        elif c in (34, 35, 36, 37):  # stores
            al, av, bound, atz, aex = addr_code(i, state, tz, cst)
            out = list(al)
            name, size, shift = {
                34: ("STQ", 8, 3), 35: ("STL", 4, 2),
                36: ("STW", 2, 1), 37: ("STB", 1, 0),
            }[c]
            conds = []
            if atz < shift:
                conds.append(f"{av} & {size - 1}")
            elif shift:
                count("align_checks_elided")
            if bound > mem_size - size:
                need_lims.add(size)
                conds.append(f"{av} > lim{size}")
            else:
                count("bounds_checks_elided")
            if not record_trace and not conds and al:
                out, av = [], f"({aex})"
            if conds:
                out += [
                    f"if {' or '.join(conds)}:",
                    f"    raise SimulationError('{name} at 0x%x (pc {i})'"
                    f" % {av})",
                ]
            if c == 37:
                vexpr = A if w1 <= 8 else f"{A} & 0xFF"
                out.append(f"data[{av}] = {vexpr}")
            elif c == 34 and w1 > 64:
                # Value not proved < 2**64: the to_bytes path keeps
                # the interpreter's OverflowError behaviour.
                out.append(
                    f"data[{av} : {av} + 8] = ({A}).to_bytes(8, 'little')"
                )
            else:
                need_mv.add(size)
                bits = {34: 64, 35: 32, 36: 16}[c]
                mask = {34: M64, 35: M32, 36: 0xFFFF}[c]
                vexpr = A if w1 <= bits else f"{A} & {mask:#x}"
                out.append(f"mv{size}[{av} >> {shift}] = {vexpr}")
            addr = av
            base = src2[i]
            if (disp[i] == 0 and base != 31 and cst[base] is None
                    and state[base] <= 64):
                state[base] = min(
                    state[base], (mem_size - size).bit_length()
                )
        elif c in (50, 51):  # ROLL / RORL
            if L is not None:
                am = (L & 31) if c == 50 else ((32 - (L & 31)) & 31)
                if am == 0:
                    if w1 <= 32:
                        count("masks_elided")
                    out = [f"{D} = {A}" if w1 <= 32
                           else f"{D} = {A} & {M32:#x}"]
                elif w1 <= 32:
                    count("masks_elided")
                    out = [
                        f"{D} = (({A} << {am}) | ({A} >> {32 - am}))"
                        f" & {M32:#x}"
                    ]
                else:
                    out = [
                        f"u = {A} & {M32:#x}",
                        f"{D} = ((u << {am}) | (u >> {32 - am}))"
                        f" & {M32:#x}",
                    ]
            else:
                amount = (f"({B} & 31)" if c == 50
                          else f"((32 - ({B} & 31)) & 31)")
                out = [
                    f"t = {amount}",
                    (f"u = {A}" if w1 <= 32
                     else f"u = {A} & {M32:#x}"),
                    f"{D} = ((u << t) | (u >> (32 - t))) & {M32:#x}"
                    " if t else u",
                ]
        elif c in (52, 53):  # ROLQ / RORQ
            if L is not None:
                am = (L & 63) if c == 52 else ((64 - (L & 63)) & 63)
                if am == 0:
                    out = [f"{D} = {A}"]
                else:
                    out = [
                        f"{D} = (({A} << {am}) | ({A} >> {64 - am}))"
                        f" & {M64:#x}"
                    ]
            else:
                amount = (f"({B} & 63)" if c == 52
                          else f"((64 - ({B} & 63)) & 63)")
                out = [
                    f"t = {amount}",
                    f"u = {A}",
                    f"{D} = ((u << t) | (u >> (64 - t))) & {M64:#x}"
                    " if t else u",
                ]
        elif c in (54, 55):  # ROLXL / RORXL (xor-rotate into dest)
            am = (L & 31) if c == 54 else ((32 - (L & 31)) & 31)
            if w1 <= 32:
                count("masks_elided")
                rot = (A if am == 0
                       else f"(({A} << {am}) | ({A} >> {32 - am}))")
                out = [f"{D} = ({rot} ^ {D}) & {M32:#x}"]
            else:
                out = [f"u = {A} & {M32:#x}"]
                rot = ("u" if am == 0
                       else f"((u << {am}) | (u >> {32 - am}))")
                out.append(f"{D} = ({rot} ^ {D}) & {M32:#x}")
        elif c == 56:  # MULMOD (IDEA multiply, 0 represents 2^16)
            if w1 <= 16:
                count("masks_elided")
            texpr = (f"({A} or 0x10000)" if w1 <= 16
                     else f"(({A} & 0xFFFF) or 0x10000)")
            if L is not None:
                uexpr = str((L & 0xFFFF) or 0x10000)
            elif wb_ <= 16:
                count("masks_elided")
                uexpr = f"({B} or 0x10000)"
            else:
                uexpr = f"(({B} & 0xFFFF) or 0x10000)"
            out = [f"{D} = (({texpr} * {uexpr}) % 0x10001) & 0xFFFF"]
        elif c == 57:  # SBOX
            a = f"a{i}"
            sh = bsel[i] * 8
            s2, ws2 = operand(src2[i], state, cst)
            if sh:
                idx = f"(({s2} >> {sh}) & 0xFF)"
            elif ws2 <= 8:
                idx = s2
            else:
                idx = f"({s2} & 0xFF)"
            if w1 <= 10:
                count("masks_elided")
            base_expr = "" if w1 <= 10 else f"({A} & -1024) | "
            cv1 = None if src1[i] == 31 else cst[src1[i]]
            if cv1 is not None and cv1 >= 0:
                bound = (cv1 & -1024) | 1020
            elif w1 <= 10:
                bound = 1020
            elif w1 <= 64:
                bound = (((1 << w1) - 1) & ~1023) | 1020
            else:
                bound = M64
            need_mv.add(4)
            if not record_trace and bound <= mem_size - 4:
                # Nothing records the byte address, so emit the word
                # index directly: (base | (idx << 2)) >> 2 distributes
                # to (base >> 2) | idx (disjoint bit ranges).
                count("sbox_index_folds")
                count("bounds_checks_elided")
                if w1 <= 10:
                    out = [f"{D} = mv4[{idx}]"]
                elif cv1 is not None and cv1 >= 0:
                    out = [f"{D} = mv4[{(cv1 & -1024) >> 2} | {idx}]"]
                else:
                    out = [
                        f"{D} = mv4[({base_expr}({idx} << 2)) >> 2]"
                    ]
                addr = None
            else:
                out = [f"{a} = {base_expr}({idx} << 2)"]
                if bound > mem_size - 4:
                    need_lims.add(4)
                    out += [
                        f"if {a} > lim4:",
                        f"    raise SimulationError('SBOX access at 0x%x"
                        f" oob' % {a})",
                    ]
                else:
                    count("bounds_checks_elided")
                out.append(f"{D} = mv4[{a} >> 2]")
                addr = a
        elif c == 58:  # SBOXSYNC: timing-only
            out = []
        elif c == 59:  # XBOX
            pm, _wpm = operand(src2[i], state, cst)
            out = [f"{D} = _xbox({A}, {pm}, {bsel[i] * 8})"]
        elif c in (48, 49):  # GRPL / GRPQ
            out = [f"{D} = _grp({A}, {B}, {32 if c == 48 else 64})"]
        else:  # pragma: no cover - callers filter unimplemented opcodes
            raise AssertionError(f"no emitter for opcode {c}")
        return out, addr

    def branch_cond(i: int, state: list, cst: list) -> "bool | str":
        c = code[i]
        s1 = src1[i]
        if s1 == 31:
            return c in (41, 44, 46)
        v = cst[s1]
        if v is not None:  # fold the whole condition at codegen time
            sv = v - (1 << 64) if (v >= 0 and v & _MSB) else v
            return {41: sv == 0, 42: sv != 0, 43: sv < 0,
                    44: sv <= 0, 45: sv > 0, 46: sv >= 0}[c]
        A = f"r{s1}"
        if c == 41:
            return f"{A} == 0"
        if c == 42:
            return f"{A} != 0"
        if state[s1] <= 63:  # provably non-negative as a signed value
            if c == 43:
                return False
            if c == 46:
                return True
            if c == 44:
                return f"{A} == 0"
            return f"{A} != 0"  # BGT
        if c == 43:
            return f"{A} & {_MSB:#x}"
        if c == 44:
            return f"{A} == 0 or {A} & {_MSB:#x}"
        if c == 45:
            return f"{A} != 0 and not {A} & {_MSB:#x}"
        return f"not {A} & {_MSB:#x}"  # BGE

    def goto_lines(p: int) -> list[str]:
        if p in block_of:
            return [f"b = {block_of[p]}"]
        return [f"pc_exit = {p}", "b = -1"]

    def value_expr(i: int) -> str:
        d = dest[i]
        if d == 32 or code[i] not in _WRITES_DEST:
            return "0"
        return f"r{d}"

    def fold_candidate(i: int, body_end: int) -> "int | None":
        """Mask of an AND-lit at i+1 that can fold into i's result.

        Safe because nothing observes the intermediate value: the AND
        reads and rewrites the same destination on the very next pc, and
        per-instruction values are only recorded in ``record_values``
        mode (where folding is disabled).
        """
        j = i + 1
        if record_values or j >= body_end:
            return None
        if code[j] != 5 or lit[j] is None:
            return None
        d = dest[i]
        if d == 32 or src1[j] != d or dest[j] != d:
            return None
        if code[i] not in _WRITES_DEST:
            return None
        return lit[j] & M64

    def apply_mask(stmt: str, d: int, m: int, wres: int) -> "str | None":
        """Rewrite ``r{d} = expr`` to apply mask ``m``, if recognizable."""
        prefix = f"r{d} = "
        if not stmt.startswith(prefix):
            return None
        if wres <= 64 and m & ((1 << wres) - 1) == (1 << wres) - 1:
            return stmt  # the AND is a no-op on a value this narrow
        rhs = stmt[len(prefix):]
        mm = re.match(r"^(.*) & (0x[0-9a-fA-F]+)$", rhs)
        if mm:
            return f"{prefix}{mm.group(1)} & {int(mm.group(2), 16) & m:#x}"
        return f"{prefix}({rhs}) & {m:#x}"

    flush_args = "values" if record_values else "None"

    for k, (start, end) in enumerate(blocks):
        state = list(widths[k])
        tzst = list(tzs[k])
        cst = list(consts[k])
        last = end - 1
        term = code[last]
        is_branch = term in _BRANCH_CODES
        is_halt = term == 0
        is_unimpl = term not in _IMPLEMENTED
        self_loop = is_branch and (
            block_of.get(target[last]) == k
            or (term != 40 and block_of.get(last + 1) == k)
        )
        head = "if" if k == 0 else "elif"
        wb(3, f"{head} b == {k}:  # pc {start}..{last}")
        bi = 4
        if self_loop:
            # The block branches back to itself: loop natively instead
            # of re-entering the dispatch chain every iteration.  The
            # entry widths already join the back edge, so the emitted
            # body is valid for every iteration.
            wb(4, "while True:")
            bi = 5
        wb(bi, f"executed += {end - start}")
        wb(bi, "if executed > max_instructions:")
        wb(bi + 1, "raise SimulationError(")
        wb(bi + 2, "'exceeded %d instructions (runaway loop?)'")
        wb(bi + 2, "% max_instructions)")

        body_end = last if (is_branch or is_halt or is_unimpl) else end
        stage_end = last if is_unimpl else end
        addr_vars: dict[int, str] = {}
        skip = -1
        for i in range(start, body_end):
            if i == skip:
                stmts, a = [], None  # folded into the previous pc
            else:
                stmts, a = instr_stmts(i, state, tzst, cst)
                m = fold_candidate(i, body_end)
                if m is not None and stmts:
                    tmp = list(state)
                    step(tmp, i)
                    folded = apply_mask(
                        stmts[-1], dest[i], m, tmp[dest[i]])
                    if folded is not None:
                        stmts = stmts[:-1] + [folded]
                        skip = i + 1
                        count("and_masks_folded")
            if a is not None:
                addr_vars[i] = a
            for line in stmts:
                wb(bi, line)
            step(state, i)
            tz_step(tzst, i)
            const_step(cst, i)
            if record_trace and record_values:
                # Values must be captured right after each instruction:
                # a later instruction in the block may overwrite the
                # same destination register.
                wb(bi, f"seq_append({i})")
                wb(bi, f"addrs_append({addr_vars.get(i, 0)})")
                wb(bi, f"values_append({value_expr(i)})")

        # Trace staging.  Entries exist for every instruction in the
        # block including a branch/HALT terminator (addr 0, value 0),
        # but not for an unimplemented one (the interpreter raises
        # before recording it).
        if record_trace and stage_end > start:
            if record_values:
                for i in range(body_end, stage_end):
                    wb(bi, f"seq_append({i})")
                    wb(bi, "addrs_append(0)")
                    wb(bi, "values_append(0)")
            else:
                seq_parts = ", ".join(
                    str(i) for i in range(start, stage_end))
                addr_parts = ", ".join(
                    str(addr_vars.get(i, 0))
                    for i in range(start, stage_end))
                wb(bi, f"seq_extend(({seq_parts},))")
                wb(bi, f"addrs_extend(({addr_parts},))")
            if not is_halt and not is_unimpl:
                wb(bi, "if len(seq) >= chunk_limit:")
                wb(bi + 1, "trace_base = yield from _drain(")
                wb(bi + 2, f"seq, addrs, {flush_args}, chunk_limit,"
                           " trace_base)")

        if is_halt:
            wb(bi, "break")
        elif is_unimpl:
            wb(bi, "raise SimulationError(")
            wb(bi + 1, f"'unimplemented opcode {term} at pc {last}')")
        elif self_loop:
            cond = True if term == 40 else branch_cond(last, state, cst)
            tk = block_of.get(target[last])
            fk = block_of.get(last + 1)
            if cond is True or cond is False:
                if term != 40:
                    count("branches_folded")
                dest_pc = target[last] if cond is True else last + 1
                if block_of.get(dest_pc) == k:
                    wb(bi, "continue")
                else:
                    for line in goto_lines(dest_pc):
                        wb(bi, line)
                    wb(bi, "break")
            elif tk == k and fk == k:
                wb(bi, "continue")
            elif tk == k:
                wb(bi, f"if {cond}:")
                wb(bi + 1, "continue")
                for line in goto_lines(last + 1):
                    wb(bi, line)
                wb(bi, "break")
            else:  # falls through to itself; the branch exits the loop
                wb(bi, f"if {cond}:")
                for line in goto_lines(target[last]):
                    wb(bi + 1, line)
                wb(bi + 1, "break")
        elif term == 40:  # BR
            for line in goto_lines(target[last]):
                wb(4, line)
        elif is_branch:
            cond = branch_cond(last, state, cst)
            if cond is True:
                count("branches_folded")
                for line in goto_lines(target[last]):
                    wb(4, line)
            elif cond is False:
                count("branches_folded")
                for line in goto_lines(last + 1):
                    wb(4, line)
            else:
                wb(4, f"if {cond}:")
                for line in goto_lines(target[last]):
                    wb(5, line)
                wb(4, "else:")
                for line in goto_lines(last + 1):
                    wb(5, line)
        else:  # fallthrough into the next leader (or off the end)
            for line in goto_lines(end):
                wb(4, line)

    wb(3, "else:")
    wb(4, "raise SimulationError(")
    wb(5, "'fell off program end at pc=%d' % pc_exit)")

    # Preamble (now that the bodies declared what they need).
    w(1, "memory = machine.memory")
    w(1, "data = memory.data")
    w(1, "mem_size = memory.size")
    if need_mv:
        w(1, "_mvb = memoryview(data)")
        for size in sorted(need_mv):
            cast = {2: "H", 4: "I", 8: "Q"}[size]
            w(1, f"mv{size} = _mvb.cast('{cast}')")
    for size in sorted(need_lims):
        w(1, f"lim{size} = mem_size - {size}")
    if need_zap:
        w(1, "_zap = _ZAPNOT")
    for s in pinned:
        w(1, f"r{s} = regs[{s}]")
    w(1, "executed = 0")
    if record_trace:
        w(1, "trace_base = 0")
        w(1, "seq = []")
        w(1, "addrs = []")
        if record_values:
            w(1, "values = []")
            w(1, "seq_append = seq.append")
            w(1, "addrs_append = addrs.append")
            w(1, "values_append = values.append")
        else:
            w(1, "seq_extend = seq.extend")
            w(1, "addrs_extend = addrs.extend")
    w(1, "pc_exit = 0")
    w(1, "b = 0")
    w(1, "try:")
    w(2, "while True:")
    lines.extend(body)
    w(1, "finally:")
    if writes or need_mv:
        for s in sorted(writes):
            w(2, f"regs[{s}] = r{s}")
        for size in sorted(need_mv):
            w(2, f"mv{size}.release()")
        if need_mv:
            w(2, "_mvb.release()")
    else:
        w(2, "pass")
    w(1, "machine.instructions_executed = executed")
    w(1, "machine.halted = True")
    if record_trace:
        w(1, "if len(seq) >= chunk_limit:")
        w(2, "trace_base = yield from _drain(")
        w(3, f"seq, addrs, {flush_args}, chunk_limit, trace_base)")
        w(1, "if seq:")
        w(2, "yield TraceChunk(")
        w(3, "seq=array(SEQ_T, seq),")
        w(3, "addrs=array(ADDR_T, addrs),")
        w(3, "start=trace_base,")
        if record_values:
            w(3, "values=array(VAL_T, values),")
        else:
            w(3, "values=None,")
        w(2, ")")
    w(1, "if False:")
    w(2, "yield None")
    return "\n".join(lines) + "\n", counters, len(blocks)
