"""The portable dispatch-loop backend.

This is the original ``Machine._interpret`` hot loop, extracted verbatim
into a backend: a single ``while`` over precompiled per-instruction field
arrays -- the fastest portable shape for a pure-Python ISA interpreter,
and the semantic reference every other backend must match bit for bit.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Iterator

from repro.sim.trace import (
    ADDR_TYPECODE,
    SEQ_TYPECODE,
    VALUE_TYPECODE,
    TraceChunk,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Machine


class InterpreterBackend:
    """Reference backend: interprets the flattened instruction arrays."""

    name = "interpreter"

    def execute(
        self,
        machine: "Machine",
        *,
        chunk_limit: int,
        record_trace: bool,
        record_values: bool,
        max_instructions: int,
    ) -> Iterator[TraceChunk]:
        return _interpret(
            machine, chunk_limit, record_trace, record_values,
            max_instructions,
        )


def _interpret(
    machine: "Machine",
    chunk_limit: int,
    record_trace: bool,
    record_values: bool,
    max_instructions: int,
) -> Iterator[TraceChunk]:
    from repro.sim.machine import M32, M64, SimulationError, _ZAPNOT_MASKS

    regs = machine.regs
    regs[31] = 0
    memory = machine.memory
    data = memory.data
    mem_size = memory.size
    code, dest, src1, src2 = (
        machine.code, machine.dest, machine.src1, machine.src2,
    )
    lit, disp, target = machine.lit, machine.disp, machine.target
    bsel = machine.bsel

    # Entries stage into plain lists (fastest append) and flush to
    # compact arrays at each chunk boundary.
    seq: list[int] = []
    addrs: list[int] = []
    values: list[int] | None = [] if record_values else None
    seq_append = seq.append
    addrs_append = addrs.append
    filled = 0
    trace_base = 0
    n = len(code)

    pc = 0
    executed = 0
    while True:
        if pc >= n:
            raise SimulationError(f"fell off program end at pc={pc}")
        c = code[pc]
        executed += 1
        if executed > max_instructions:
            raise SimulationError(
                f"exceeded {max_instructions} instructions (runaway loop?)"
            )
        addr = 0
        next_pc = pc + 1
        if c == 7:  # XOR
            regs[dest[pc]] = regs[src1[pc]] ^ (
                lit[pc] if lit[pc] is not None else regs[src2[pc]]
            )
        elif c == 3:  # ADDL
            b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
            regs[dest[pc]] = (regs[src1[pc]] + b) & M32
        elif c == 1:  # ADDQ
            b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
            regs[dest[pc]] = (regs[src1[pc]] + b) & M64
        elif c == 5:  # AND
            regs[dest[pc]] = regs[src1[pc]] & (
                lit[pc] if lit[pc] is not None else regs[src2[pc]]
            )
        elif c == 6:  # BIS
            regs[dest[pc]] = regs[src1[pc]] | (
                lit[pc] if lit[pc] is not None else regs[src2[pc]]
            )
        elif c == 10:  # SLL
            b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
            regs[dest[pc]] = (regs[src1[pc]] << (b & 63)) & M64
        elif c == 11:  # SRL
            b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
            regs[dest[pc]] = regs[src1[pc]] >> (b & 63)
        elif c == 20:  # EXTBL
            b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
            regs[dest[pc]] = (regs[src1[pc]] >> ((b & 7) * 8)) & 0xFF
        elif c == 57:  # SBOX
            base = regs[src1[pc]]
            index = (regs[src2[pc]] >> (bsel[pc] * 8)) & 0xFF
            addr = (base & ~0x3FF) | (index << 2)
            if addr + 4 > mem_size:
                raise SimulationError(f"SBOX access at 0x{addr:x} oob")
            regs[dest[pc]] = int.from_bytes(data[addr : addr + 4], "little")
        elif c == 31:  # LDL
            addr = (regs[src2[pc]] + disp[pc]) & M64
            if addr % 4 or addr + 4 > mem_size:
                raise SimulationError(f"LDL at 0x{addr:x} (pc {pc})")
            regs[dest[pc]] = int.from_bytes(data[addr : addr + 4], "little")
        elif c == 30:  # LDQ
            addr = (regs[src2[pc]] + disp[pc]) & M64
            if addr % 8 or addr + 8 > mem_size:
                raise SimulationError(f"LDQ at 0x{addr:x} (pc {pc})")
            regs[dest[pc]] = int.from_bytes(data[addr : addr + 8], "little")
        elif c == 33:  # LDBU
            addr = (regs[src2[pc]] + disp[pc]) & M64
            if addr >= mem_size:
                raise SimulationError(f"LDBU at 0x{addr:x} (pc {pc})")
            regs[dest[pc]] = data[addr]
        elif c == 32:  # LDWU
            addr = (regs[src2[pc]] + disp[pc]) & M64
            if addr % 2 or addr + 2 > mem_size:
                raise SimulationError(f"LDWU at 0x{addr:x} (pc {pc})")
            regs[dest[pc]] = int.from_bytes(data[addr : addr + 2], "little")
        elif c == 35:  # STL
            addr = (regs[src2[pc]] + disp[pc]) & M64
            if addr % 4 or addr + 4 > mem_size:
                raise SimulationError(f"STL at 0x{addr:x} (pc {pc})")
            data[addr : addr + 4] = (regs[src1[pc]] & M32).to_bytes(4, "little")
        elif c == 34:  # STQ
            addr = (regs[src2[pc]] + disp[pc]) & M64
            if addr % 8 or addr + 8 > mem_size:
                raise SimulationError(f"STQ at 0x{addr:x} (pc {pc})")
            data[addr : addr + 8] = regs[src1[pc]].to_bytes(8, "little")
        elif c == 37:  # STB
            addr = (regs[src2[pc]] + disp[pc]) & M64
            if addr >= mem_size:
                raise SimulationError(f"STB at 0x{addr:x} (pc {pc})")
            data[addr] = regs[src1[pc]] & 0xFF
        elif c == 36:  # STW
            addr = (regs[src2[pc]] + disp[pc]) & M64
            if addr % 2 or addr + 2 > mem_size:
                raise SimulationError(f"STW at 0x{addr:x} (pc {pc})")
            data[addr : addr + 2] = (regs[src1[pc]] & 0xFFFF).to_bytes(2, "little")
        elif c == 50:  # ROLL
            b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
            amount = b & 31
            value = regs[src1[pc]] & M32
            regs[dest[pc]] = (
                ((value << amount) | (value >> (32 - amount))) & M32
                if amount else value
            )
        elif c == 51:  # RORL
            b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
            amount = (32 - (b & 31)) & 31
            value = regs[src1[pc]] & M32
            regs[dest[pc]] = (
                ((value << amount) | (value >> (32 - amount))) & M32
                if amount else value
            )
        elif c == 54:  # ROLXL
            amount = lit[pc] & 31
            value = regs[src1[pc]] & M32
            rotated = (
                ((value << amount) | (value >> (32 - amount))) & M32
                if amount else value
            )
            regs[dest[pc]] = (rotated ^ regs[dest[pc]]) & M32
        elif c == 55:  # RORXL
            amount = (32 - (lit[pc] & 31)) & 31
            value = regs[src1[pc]] & M32
            rotated = (
                ((value << amount) | (value >> (32 - amount))) & M32
                if amount else value
            )
            regs[dest[pc]] = (rotated ^ regs[dest[pc]]) & M32
        elif c == 56:  # MULMOD (IDEA multiply, 0 represents 2^16)
            a = regs[src1[pc]] & 0xFFFF
            b = (lit[pc] if lit[pc] is not None else regs[src2[pc]]) & 0xFFFF
            if a == 0:
                a = 0x10000
            if b == 0:
                b = 0x10000
            regs[dest[pc]] = ((a * b) % 0x10001) & 0xFFFF
        elif c == 59:  # XBOX
            operand = regs[src1[pc]]
            perm_map = regs[src2[pc]]
            result = 0
            base_bit = bsel[pc] * 8
            for j in range(8):
                bit = (operand >> ((perm_map >> (6 * j)) & 0x3F)) & 1
                result |= bit << (base_bit + j)
            regs[dest[pc]] = result
        elif c == 2:  # SUBQ
            b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
            regs[dest[pc]] = (regs[src1[pc]] - b) & M64
        elif c == 4:  # SUBL
            b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
            regs[dest[pc]] = (regs[src1[pc]] - b) & M32
        elif c == 8:  # BIC
            b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
            regs[dest[pc]] = regs[src1[pc]] & ~b & M64
        elif c == 9:  # ORNOT
            b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
            regs[dest[pc]] = (regs[src1[pc]] | (~b & M64)) & M64
        elif c == 12:  # SRA
            b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
            value = regs[src1[pc]]
            if value & 0x8000000000000000:
                value -= 1 << 64
            regs[dest[pc]] = (value >> (b & 63)) & M64
        elif c == 13:  # MULL
            b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
            regs[dest[pc]] = ((regs[src1[pc]] & M32) * (b & M32)) & M32
        elif c == 14:  # MULQ
            b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
            regs[dest[pc]] = (regs[src1[pc]] * b) & M64
        elif c == 15:  # CMPEQ
            b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
            regs[dest[pc]] = 1 if regs[src1[pc]] == b else 0
        elif c == 16:  # CMPULT
            b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
            regs[dest[pc]] = 1 if regs[src1[pc]] < b else 0
        elif c == 17:  # CMPULE
            b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
            regs[dest[pc]] = 1 if regs[src1[pc]] <= b else 0
        elif c == 18:  # CMPLT
            b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
            a = regs[src1[pc]]
            if a & 0x8000000000000000:
                a -= 1 << 64
            if b & 0x8000000000000000:
                b -= 1 << 64
            regs[dest[pc]] = 1 if a < b else 0
        elif c == 19:  # CMPLE
            b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
            a = regs[src1[pc]]
            if a & 0x8000000000000000:
                a -= 1 << 64
            if b & 0x8000000000000000:
                b -= 1 << 64
            regs[dest[pc]] = 1 if a <= b else 0
        elif c == 21:  # INSBL
            b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
            regs[dest[pc]] = (regs[src1[pc]] & 0xFF) << ((b & 7) * 8)
        elif c == 22:  # ZAPNOT
            b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
            regs[dest[pc]] = regs[src1[pc]] & _ZAPNOT_MASKS[b & 0xFF]
        elif c == 23:  # S4ADDQ
            b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
            regs[dest[pc]] = (regs[src1[pc]] * 4 + b) & M64
        elif c == 24:  # S8ADDQ
            b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
            regs[dest[pc]] = (regs[src1[pc]] * 8 + b) & M64
        elif c == 25:  # CMOVEQ
            if regs[src1[pc]] == 0:
                b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                regs[dest[pc]] = b
        elif c == 26:  # CMOVNE
            if regs[src1[pc]] != 0:
                b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
                regs[dest[pc]] = b
        elif c == 27:  # LDA
            regs[dest[pc]] = (regs[src2[pc]] + disp[pc]) & M64
        elif c == 28:  # LDIQ
            regs[dest[pc]] = lit[pc]
        elif c == 40:  # BR
            next_pc = target[pc]
        elif c == 41:  # BEQ
            if regs[src1[pc]] == 0:
                next_pc = target[pc]
        elif c == 42:  # BNE
            if regs[src1[pc]] != 0:
                next_pc = target[pc]
        elif c == 43:  # BLT
            if regs[src1[pc]] & 0x8000000000000000:
                next_pc = target[pc]
        elif c == 44:  # BLE
            a = regs[src1[pc]]
            if a == 0 or a & 0x8000000000000000:
                next_pc = target[pc]
        elif c == 45:  # BGT
            a = regs[src1[pc]]
            if a != 0 and not a & 0x8000000000000000:
                next_pc = target[pc]
        elif c == 46:  # BGE
            if not regs[src1[pc]] & 0x8000000000000000:
                next_pc = target[pc]
        elif c == 52:  # ROLQ
            b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
            amount = b & 63
            value = regs[src1[pc]]
            regs[dest[pc]] = (
                ((value << amount) | (value >> (64 - amount))) & M64
                if amount else value
            )
        elif c == 53:  # RORQ
            b = lit[pc] if lit[pc] is not None else regs[src2[pc]]
            amount = (64 - (b & 63)) & 63
            value = regs[src1[pc]]
            regs[dest[pc]] = (
                ((value << amount) | (value >> (64 - amount))) & M64
                if amount else value
            )
        elif c == 48 or c == 49:  # GRPL / GRPQ (Shi & Lee)
            width = 32 if c == 48 else 64
            x = regs[src1[pc]]
            ctrl = lit[pc] if lit[pc] is not None else regs[src2[pc]]
            low = high = 0
            low_count = high_count = 0
            for i in range(width):
                bit = (x >> i) & 1
                if (ctrl >> i) & 1:
                    high |= bit << high_count
                    high_count += 1
                else:
                    low |= bit << low_count
                    low_count += 1
            regs[dest[pc]] = low | (high << low_count)
        elif c == 58:  # SBOXSYNC: timing-only
            pass
        elif c == 0:  # HALT
            if record_trace:
                seq_append(pc)
                addrs_append(0)
                if values is not None:
                    values.append(0)
                filled += 1
            break
        else:
            raise SimulationError(f"unimplemented opcode {c} at pc {pc}")

        # Writes to r31 were remapped to shadow slot 32 at compile time,
        # so regs[31] stays zero without a per-instruction reset.
        if record_trace:
            seq_append(pc)
            addrs_append(addr)
            if values is not None:
                d = dest[pc]
                values.append(regs[d] if d != 32 else 0)
            filled += 1
            if filled >= chunk_limit:
                yield TraceChunk(
                    seq=array(SEQ_TYPECODE, seq),
                    addrs=array(ADDR_TYPECODE, addrs),
                    start=trace_base,
                    values=(None if values is None
                            else array(VALUE_TYPECODE, values)),
                )
                trace_base += filled
                filled = 0
                del seq[:]
                del addrs[:]
                if values is not None:
                    del values[:]
        pc = next_pc

    machine.instructions_executed = executed
    machine.halted = True
    if record_trace and filled:
        yield TraceChunk(
            seq=array(SEQ_TYPECODE, seq),
            addrs=array(ADDR_TYPECODE, addrs),
            start=trace_base,
            values=(None if values is None
                    else array(VALUE_TYPECODE, values)),
        )
