"""Pluggable execution backends for the functional RISC-A machine.

A backend turns one claimed :class:`~repro.sim.machine.Machine` execution
into the canonical :class:`~repro.sim.trace.TraceChunk` stream.  Everything
downstream -- the timing pipelines, the runner's trace cache, the analysis
harnesses -- consumes that stream, so backends are interchangeable as long
as they produce bit-identical chunks (the equivalence suite in
``tests/sim/test_backend_equivalence.py`` is the oracle).

Two backends ship with the repo:

* ``"interpreter"`` -- the portable dispatch-loop interpreter, extracted
  from ``Machine`` (see :mod:`repro.sim.backends.interpreter`).
* ``"compiled"`` -- a per-program specializer that translates a finalized
  ``Program`` into one Python generator function (unrolled per-instruction
  dispatch, locals-pinned registers, list-of-words memory staging), cached
  by program digest (see :mod:`repro.sim.backends.compiled`).

See ``docs/backends.md`` for the protocol contract and codegen shape.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Protocol, runtime_checkable

from repro.sim.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (machine -> here)
    from repro.sim.machine import Machine
    from repro.sim.trace import TraceChunk

#: Chunk limit meaning "never flush": the whole trace arrives as one chunk.
UNBOUNDED_CHUNK = 1 << 62

#: Backend used when callers pass ``backend=None``.
DEFAULT_BACKEND = "interpreter"


@runtime_checkable
class ExecutionBackend(Protocol):
    """One way to run a claimed machine to completion.

    ``execute`` must drive the machine until HALT (or raise
    :class:`~repro.sim.machine.SimulationError`), yield ``TraceChunk``
    objects with interpreter-identical contents *and boundaries* (every
    chunk holds exactly ``chunk_limit`` entries except the final partial
    one), and leave ``machine.regs``, ``machine.memory``,
    ``machine.halted`` and ``machine.instructions_executed`` exactly as
    the interpreter would.  When ``record_trace`` is false the iterator
    yields nothing but the architectural effects still happen.
    """

    name: str

    def execute(
        self,
        machine: "Machine",
        *,
        chunk_limit: int,
        record_trace: bool,
        record_values: bool,
        max_instructions: int,
    ) -> Iterator["TraceChunk"]:  # pragma: no cover - protocol signature
        ...


#: The execution-backend registry, built on the shared
#: :class:`repro.sim.registry.Registry` helper (the timing-engine registry
#: in :mod:`repro.sim.timing` uses the same one, with the same error shape).
_REGISTRY: Registry[ExecutionBackend] = Registry(
    "backend", default=DEFAULT_BACKEND
)


def register_backend(backend: ExecutionBackend, *, replace: bool = False) -> None:
    """Register ``backend`` under ``backend.name``."""
    _REGISTRY.register(backend, replace=replace)


def backend_names() -> tuple[str, ...]:
    """Registered backend names, sorted (for CLI choices and error text)."""
    return _REGISTRY.names()


def get_backend(backend: "str | ExecutionBackend | None") -> ExecutionBackend:
    """Resolve a backend argument: None, a registered name, or an instance."""
    return _REGISTRY.get(backend)


# Register the built-in backends.  Imported late in the module so the
# registry exists; neither import pulls in repro.sim.machine at module
# scope beyond what repro.sim already loads.
from repro.sim.backends.compiled import CompiledBackend  # noqa: E402
from repro.sim.backends.interpreter import InterpreterBackend  # noqa: E402

register_backend(InterpreterBackend())
register_backend(CompiledBackend())

__all__ = [
    "DEFAULT_BACKEND",
    "UNBOUNDED_CHUNK",
    "ExecutionBackend",
    "CompiledBackend",
    "InterpreterBackend",
    "backend_names",
    "get_backend",
    "register_backend",
]
