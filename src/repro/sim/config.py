"""Machine model configurations (the paper's Table 2 plus study variants).

``None`` for a resource count or structure size means *infinite*.  The
presets:

* ``BASE4W``   -- the section 3.2 baseline used for Figures 4 and 5: 4-wide,
  256-entry window, one multiply initiated per cycle at 7 cycles, realistic
  memory, real predictor, conservative load/store ordering.
* ``ALPHA21264`` -- the validation stand-in for the paper's real 600 MHz
  21264 workstation runs (DESIGN.md substitution #2): BASE4W with the
  21264's published 80-entry window, 32-entry load queue and 4-cycle loads.
* ``FOURW`` (4W), ``FOURW_PLUS`` (4W+), ``EIGHTW_PLUS`` (8W+) -- Table 2's
  evaluation machines with optimized multipliers, MULMOD hardware, and (for
  the + models) dedicated SBox caches and extra rotator units.
* ``DATAFLOW`` (DF) -- infinite everything, perfect prediction, perfect
  memory, perfect alias detection: the upper-bound machine.

For the Figure 5 bottleneck study, :func:`bottleneck_config` re-inserts a
single constraint into the dataflow machine, exactly following the paper's
methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MachineConfig:
    name: str

    # Front end.
    fetch_width: int | None = 4            # instructions fetched per cycle
    fetch_groups_per_cycle: int = 1        # taken-branch-terminated groups
    fetch_break_on_taken: bool = True
    frontend_depth: int = 2                # fetch -> earliest issue offset
    perfect_branch_prediction: bool = False
    mispredict_penalty: int = 8            # branch resolve -> refetch (min)
    predictor_entries: int = 2048

    # Window and issue.
    window_size: int | None = 256
    issue_width: int | None = 4
    retire_width: int | None = 8

    # Functional units (None = unlimited).
    num_ialu: int | None = 4
    num_rotator: int | None = 2
    alu_latency: int = 1
    rotator_latency: int = 1

    # Multipliers: a slot model -- a 64-bit multiply consumes ``mul64_cost``
    # slots in its issue cycle, etc.  BASE4W's single multiplier = 2 slots
    # with every multiply costing 2; Table 2's "1-64/2-32" = 2 slots with a
    # 32-bit multiply or MULMOD costing 1.
    mul_slots: int | None = 2
    mul64_cost: int = 2
    mul32_cost: int = 2
    mulmod_cost: int = 2
    mul64_latency: int = 7
    mul32_latency: int = 7
    mulmod_latency: int = 4

    # Memory system.
    perfect_memory: bool = False
    perfect_alias: bool = False
    dcache_ports: int | None = 2
    load_latency: int = 3                  # pipelined L1 hit (addr gen + access)
    store_latency: int = 1
    lsq_size: int = 64

    # SBOX execution.
    sbox_caches: int = 0                   # 0 -> SBOX uses a d-cache port
    sbox_cache_ports: int = 1              # accesses/cycle per SBox cache
    sbox_dcache_latency: int = 2           # SBOX via d-cache port (paper: 2)
    sbox_cache_latency: int = 1            # SBox-cache hit (paper: 1)

    # Cache hierarchy parameters (ignored under perfect_memory).
    l1_size: int = 32768
    l1_assoc: int = 2
    l1_block: int = 32
    l2_size: int = 524288
    l2_assoc: int = 4
    l2_hit_latency: int = 12
    memory_latency: int = 120
    tlb_entries: int = 32
    tlb_assoc: int = 8
    page_size: int = 8192
    tlb_miss_latency: int = 30

    # Simulator instrumentation / memory-bounding knobs.  These control the
    # timing model's bookkeeping, never the simulated cycle counts; see
    # docs/observability.md.
    #: Instructions between per-cycle resource-map prune passes.  Each pass
    #: trims entries below the safe horizon by walking the (monotone) dead
    #: cycle range, so pruning is amortized O(1) per cycle and the maps
    #: stay at O(prune_interval + window) entries -- the bound that keeps
    #: streaming simulation at constant memory.
    prune_interval: int = 8192
    #: Retained for compatibility; the prune pass now picks its trim
    #: strategy (range walk vs key scan) from map density automatically.
    prune_entries: int = 200_000
    #: Hard cap on rows captured by the ``schedule_range`` hook per run
    #: (``None`` = unbounded).  A truncated capture sets
    #: ``stats.extra["schedule_truncated"]``.
    max_schedule_entries: int | None = 100_000

    def with_(self, **changes) -> "MachineConfig":
        """Return a modified copy (dataclasses.replace wrapper)."""
        return replace(self, **changes)


BASE4W = MachineConfig(name="base-4W")

ALPHA21264 = BASE4W.with_(
    name="alpha-21264",
    window_size=80,
    lsq_size=32,
    load_latency=4,        # 21264 L1 load-to-use is one cycle longer
    mispredict_penalty=7,
)

# Table 2 machines.
FOURW = BASE4W.with_(
    name="4W",
    window_size=128,
    mul32_cost=1,
    mulmod_cost=1,
    mul32_latency=4,       # early-out 32-bit multiply
    num_rotator=2,
)

FOURW_PLUS = FOURW.with_(
    name="4W+",
    sbox_caches=4,
    sbox_cache_ports=1,
    num_rotator=4,
)

EIGHTW_PLUS = FOURW_PLUS.with_(
    name="8W+",
    fetch_width=8,
    fetch_groups_per_cycle=2,
    window_size=256,
    issue_width=8,
    retire_width=16,
    num_ialu=8,
    num_rotator=8,
    mul_slots=4,
    dcache_ports=4,
    sbox_cache_ports=2,
)

DATAFLOW = MachineConfig(
    name="DF",
    fetch_width=None,
    fetch_break_on_taken=False,
    frontend_depth=0,
    perfect_branch_prediction=True,
    window_size=None,
    issue_width=None,
    retire_width=None,
    num_ialu=None,
    num_rotator=None,
    mul_slots=None,
    mul32_cost=1,
    mulmod_cost=1,
    mul32_latency=4,
    perfect_memory=True,
    perfect_alias=True,
    dcache_ports=None,
    sbox_caches=4,
    sbox_cache_ports=10**9,
    lsq_size=10**9,
)

#: Dataflow machine for *original* (baseline-ISA) code: same as DATAFLOW but
#: with the baseline's 7-cycle multiplies, so Figure 4's DF column reflects
#: the code the baseline machine runs.
DATAFLOW_BASEISA = DATAFLOW.with_(
    name="DF-base",
    mul32_latency=7,
    mul32_cost=2,
)

BOTTLENECKS = ("alias", "branch", "issue", "mem", "res", "window", "all")


def bottleneck_config(which: str, baseline: MachineConfig = BASE4W) -> MachineConfig:
    """Figure 5 methodology: one bottleneck re-inserted into the DF machine.

    ``which`` is one of :data:`BOTTLENECKS`; ``'all'`` returns the full
    baseline machine.  The dataflow base uses the baseline ISA's multiplier
    latencies so the comparison isolates the named constraint.
    """
    df = DATAFLOW_BASEISA.with_(
        name=f"DF+{which}",
        mul32_latency=baseline.mul32_latency,
        mul32_cost=1,  # cost irrelevant while slots are infinite
    )
    if which == "alias":
        return df.with_(perfect_alias=False, lsq_size=baseline.lsq_size)
    if which == "branch":
        return df.with_(
            perfect_branch_prediction=False,
            mispredict_penalty=baseline.mispredict_penalty,
            frontend_depth=baseline.frontend_depth,
        )
    if which == "issue":
        return df.with_(
            issue_width=baseline.issue_width,
            retire_width=baseline.retire_width,
            fetch_width=baseline.fetch_width,
        )
    if which == "mem":
        return df.with_(perfect_memory=False)
    if which == "res":
        return df.with_(
            num_ialu=baseline.num_ialu,
            num_rotator=baseline.num_rotator,
            mul_slots=baseline.mul_slots,
            mul64_cost=baseline.mul64_cost,
            mul32_cost=baseline.mul32_cost,
            mulmod_cost=baseline.mulmod_cost,
            dcache_ports=baseline.dcache_ports,
            sbox_caches=0,
        )
    if which == "window":
        return df.with_(window_size=baseline.window_size)
    if which == "all":
        return baseline
    raise ValueError(f"unknown bottleneck {which!r}; pick from {BOTTLENECKS}")
