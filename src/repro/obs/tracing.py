"""Structured span/event tracer with Chrome/Perfetto trace-event export.

The tracer records *complete* spans (``ph: "X"``), instant events
(``ph: "i"``) and counter samples (``ph: "C"``) in the Chrome trace-event
format, the JSON dialect both ``chrome://tracing`` and Perfetto's
https://ui.perfetto.dev load directly.  Timestamps are microseconds from
tracer creation; synthetic timelines (the pipeline schedule, where one
cycle is mapped to one microsecond) inject events with explicit
timestamps via :meth:`Tracer.add_events`.

Two sink formats, chosen by file suffix in :meth:`Tracer.write`:

* ``*.jsonl`` -- one event object per line (streaming-friendly), plus a
  leading metadata line;
* anything else -- a Chrome JSON object ``{"traceEvents": [...]}``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager


class Tracer:
    """Collects trace events; cheap enough to leave enabled in CLIs."""

    def __init__(self, clock=time.perf_counter, pid: int | None = None):
        self._clock = clock
        self._start = clock()
        self.pid = os.getpid() if pid is None else pid
        self.events: list[dict] = []
        self._lock = threading.Lock()

    # -- time ------------------------------------------------------------

    def now_us(self) -> float:
        """Microseconds since tracer creation."""
        return (self._clock() - self._start) * 1e6

    # -- recording -------------------------------------------------------

    def add_event(self, event: dict) -> None:
        with self._lock:
            self.events.append(event)

    def add_events(self, events) -> None:
        with self._lock:
            self.events.extend(events)

    @contextmanager
    def span(self, name: str, category: str = "runner",
             args: dict | None = None, tid: int = 0):
        """Record a complete event around the ``with`` body.

        Yields the mutable ``args`` dict so the body can attach results
        (counts, cache outcomes) that are only known at exit.
        """
        args = dict(args or {})
        start = self.now_us()
        try:
            yield args
        finally:
            self.add_event({
                "name": name, "cat": category, "ph": "X",
                "ts": start, "dur": self.now_us() - start,
                "pid": self.pid, "tid": tid, "args": args,
            })

    def instant(self, name: str, category: str = "runner",
                args: dict | None = None, tid: int = 0) -> None:
        self.add_event({
            "name": name, "cat": category, "ph": "i", "s": "t",
            "ts": self.now_us(), "pid": self.pid, "tid": tid,
            "args": dict(args or {}),
        })

    def counter(self, name: str, values: dict, tid: int = 0) -> None:
        """A Perfetto counter-track sample (stacked series per key)."""
        self.add_event({
            "name": name, "cat": "metrics", "ph": "C",
            "ts": self.now_us(), "pid": self.pid, "tid": tid,
            "args": dict(values),
        })

    # -- export ----------------------------------------------------------

    def to_chrome(self) -> dict:
        """The ``{"traceEvents": [...]}`` document Perfetto loads."""
        with self._lock:
            events = list(self.events)
        events.sort(key=lambda event: event.get("ts", 0))
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path) -> None:
        path = os.fspath(path)
        if path.endswith(".jsonl"):
            self.write_jsonl(path)
            return
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome(), handle)
            handle.write("\n")

    def write_jsonl(self, path) -> None:
        document = self.to_chrome()
        with open(path, "w", encoding="utf-8") as handle:
            for event in document["traceEvents"]:
                handle.write(json.dumps(event))
                handle.write("\n")
