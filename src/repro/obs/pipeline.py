"""Pipeline-schedule event stream: one source, two renderers.

The timing model's schedule hook captures ``(position, static_index,
fetch, issue, complete, retire)`` tuples (see
:func:`repro.sim.timing.simulate`).  This module turns that raw capture
into a structured span stream consumed by both the ASCII viewer
(:func:`repro.sim.pipeview.render_pipeline`) and the Perfetto exporter
(:func:`schedule_trace_events`), so the two visualizations can never
drift apart.

This module deliberately knows nothing about :mod:`repro.sim`: label text
is supplied by the caller (a list indexed by static instruction, or a
callable), keeping ``repro.obs`` a leaf package.
"""

from __future__ import annotations

from dataclasses import dataclass

#: One Perfetto "thread" lane per in-flight instruction slot; reusing a
#: small fixed pool keeps the track count readable for long windows.
DEFAULT_LANES = 16


@dataclass(frozen=True)
class ScheduleSpan:
    """One dynamic instruction's journey through the modeled pipeline."""

    position: int       # trace position
    static_index: int   # index into the program's static instructions
    fetch: int          # window-entry cycle (pipeview's "F" column)
    issue: int          # first execution cycle
    complete: int       # result-ready cycle
    retire: int         # in-order retirement cycle

    @property
    def wait_cycles(self) -> int:
        """Cycles stalled between window entry and issue."""
        return self.issue - self.fetch

    @property
    def execute_cycles(self) -> int:
        return self.complete - self.issue

    @property
    def drain_cycles(self) -> int:
        """Completed-but-not-retired cycles (in-order retire backpressure)."""
        return self.retire - self.complete

    @property
    def lifetime(self) -> int:
        return self.retire - self.fetch + 1


def schedule_spans(schedule) -> list[ScheduleSpan]:
    """Decode raw schedule tuples into :class:`ScheduleSpan` records."""
    return [ScheduleSpan(*entry) for entry in schedule]


def _label_for(labels, static_index: int) -> str:
    if labels is None:
        return f"inst[{static_index}]"
    if callable(labels):
        return labels(static_index)
    return labels[static_index]


def schedule_trace_events(
    schedule,
    labels=None,
    *,
    pid: int = 0,
    lanes: int = DEFAULT_LANES,
    cycle_us: float = 1.0,
    track_prefix: str = "pipeline",
) -> list[dict]:
    """Chrome trace events for a schedule window (one cycle == ``cycle_us``).

    Each instruction becomes a complete event spanning window entry to
    retirement on one of ``lanes`` round-robin tracks, with the stage
    boundaries attached as ``args`` -- hovering a slice in Perfetto shows
    the full fetch/issue/complete/retire timeline.  ``labels`` maps a
    static instruction index to its display text (list or callable).
    """
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": track_prefix},
    }]
    spans = schedule_spans(schedule)
    for lane in range(min(lanes, max(len(spans), 1))):
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": lane,
            "args": {"name": f"{track_prefix} lane {lane}"},
        })
    for span in spans:
        events.append({
            "name": _label_for(labels, span.static_index),
            "cat": "pipeline",
            "ph": "X",
            "ts": span.fetch * cycle_us,
            "dur": max(span.lifetime * cycle_us, cycle_us),
            "pid": pid,
            "tid": span.position % lanes,
            "args": {
                "position": span.position,
                "static_index": span.static_index,
                "fetch": span.fetch,
                "issue": span.issue,
                "complete": span.complete,
                "retire": span.retire,
                "wait_cycles": span.wait_cycles,
                "execute_cycles": span.execute_cycles,
                "drain_cycles": span.drain_cycles,
            },
        })
    return events
