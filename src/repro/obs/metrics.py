"""Labeled metrics registry with a stable JSON snapshot schema.

Three instrument kinds, deliberately minimal (no exposition server, no
background threads -- snapshots are taken explicitly and written to disk):

* :class:`Counter` -- monotonically increasing count.
* :class:`Gauge` -- a value that can move both ways (set/add).
* :class:`Histogram` -- bucketed observations with count and sum.

An instrument is identified by ``(name, labels)``; asking the registry for
the same pair twice returns the same object, so call sites never need to
hold references.  ``snapshot()`` renders every instrument into the
documented ``repro.obs.metrics/1`` schema (see ``docs/observability.md``
and :mod:`repro.obs.schema`), sorted deterministically so exported files
diff cleanly.
"""

from __future__ import annotations

import json
import threading

#: Default histogram bucket upper bounds (seconds-flavored; pass custom
#: ``buckets`` for anything else).  The terminal +inf bucket is implicit.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0,
)


def _label_key(labels: dict | None) -> tuple:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """Common identity and snapshot plumbing for all instrument kinds."""

    kind = "abstract"

    def __init__(self, name: str, labels: dict | None):
        self.name = name
        self.labels = {str(k): str(v) for k, v in (labels or {}).items()}

    def _value_fields(self) -> dict:
        raise NotImplementedError

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            **self._value_fields(),
        }


class Counter(_Instrument):
    """Monotonic counter; ``inc`` with a negative amount is an error."""

    kind = "counter"

    def __init__(self, name: str, labels: dict | None = None):
        super().__init__(name, labels)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def _value_fields(self) -> dict:
        return {"value": self.value}


class Gauge(_Instrument):
    """Last-written value; ``add`` for relative moves in either direction."""

    kind = "gauge"

    def __init__(self, name: str, labels: dict | None = None):
        super().__init__(name, labels)
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount

    def _value_fields(self) -> dict:
        return {"value": self.value}


class Histogram(_Instrument):
    """Cumulative-bucket histogram (each bucket counts values <= its bound)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: dict | None = None,
        buckets: tuple = DEFAULT_BUCKETS,
    ):
        super().__init__(name, labels)
        self.bounds = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._bucket_counts = [0] * (len(self.bounds) + 1)  # +1 for +inf
        self.count = 0
        self.sum: float = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self._bucket_counts[index] += 1
                return
        self._bucket_counts[-1] += 1

    def _value_fields(self) -> dict:
        buckets = []
        cumulative = 0
        for bound, count in zip(self.bounds, self._bucket_counts):
            cumulative += count
            buckets.append({"le": bound, "count": cumulative})
        buckets.append({"le": "+inf", "count": self.count})
        return {"count": self.count, "sum": self.sum, "buckets": buckets}


class MetricsRegistry:
    """Process-local instrument store; thread-safe instrument creation."""

    def __init__(self):
        self._instruments: dict[tuple, _Instrument] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, labels: dict | None, **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, labels, **kwargs)
                self._instruments[key] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r}{dict(labels or {})} already registered "
                    f"as {instrument.kind}, requested {cls.kind}"
                )
            return instrument

    def counter(self, name: str, labels: dict | None = None) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, labels: dict | None = None) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        labels: dict | None = None,
        buckets: tuple = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(
        self,
        generated_by: str | None = None,
        extra: dict | None = None,
    ) -> dict:
        """The documented ``repro.obs.metrics/1`` export document.

        ``extra`` attaches free-form provenance (e.g. the environment
        fingerprint an :class:`repro.obs.Observability` session stamps so
        exported telemetry is attributable to a commit and machine).
        """
        from repro.obs.schema import METRICS_SCHEMA

        metrics = [
            self._instruments[key].snapshot()
            for key in sorted(self._instruments)
        ]
        document = {"schema": METRICS_SCHEMA, "metrics": metrics}
        if generated_by:
            document["generated_by"] = generated_by
        if extra:
            document["extra"] = dict(extra)
        return document

    def to_json(
        self,
        generated_by: str | None = None,
        indent: int = 2,
        extra: dict | None = None,
    ) -> str:
        return json.dumps(self.snapshot(generated_by, extra), indent=indent)

    def write(
        self,
        path,
        generated_by: str | None = None,
        extra: dict | None = None,
    ) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json(generated_by, extra=extra))
            handle.write("\n")
