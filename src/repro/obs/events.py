"""The unified run ledger: one event bus for every subsystem.

Runner heartbeats, cache traffic, compiled-backend codegen, bench
recordings and profiler snapshots used to be five disjoint outputs with
no shared run identity.  :class:`EventBus` gives them one append-only,
schema-validated stream (``repro.obs.events/1``): every published event
carries the bus's per-invocation ``run_id``, a monotonic ``seq`` number
and a timestamp in seconds relative to the run start, so a recorded
ledger replays deterministically (``repro.tools.dash --replay``).

Event shape (one JSON object per JSONL line)::

    {"schema": "repro.obs.events/1",
     "run_id": "3f9c2a81d4b7",         # shared by every event of one run
     "seq": 17,                         # contiguous from 0, per run
     "ts": 0.0421,                      # seconds since the run started
     "source": "runner",                # publishing subsystem
     "type": "group-done",              # event kind within the source
     "data": {"group": "RC4/encrypt:1024B", ...}}   # str -> scalar

Sinks are pluggable and may be attached to one bus simultaneously:

* :class:`JsonlSink` -- the on-disk ledger (``--events-out``), flushed
  per event so ``repro.tools.dash --follow`` can tail a live run;
* :class:`RingBufferSink` -- a bounded in-memory tail for in-process
  dashboards and tests;
* :class:`MetricsSink` -- folds the stream into a
  :class:`repro.obs.MetricsRegistry` (``events.published`` counter
  labeled by source and type).

Deeply nested publishers (the compiled backend's codegen, the bench
history recorder) cannot be handed a bus explicitly without threading it
through every caller; they use the process-global *active bus* instead
(:func:`set_active_bus` / :func:`publish_event`), managed by
:class:`repro.obs.Observability` for the lifetime of a CLI run -- the
same shape as the :mod:`logging` root logger.  Publishing is a cheap
no-op while no bus is active.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from collections import deque

from repro.obs.schema import EVENTS_SCHEMA

#: Known event sources and their event types, documented for dashboard
#: authors; the schema deliberately does not pin this list (new sources
#: must not invalidate old ledgers).
KNOWN_SOURCES = {
    "runner": ("start", "dispatch", "group-done", "heartbeat", "stuck",
               "finish", "result"),
    "cache": ("hit", "miss", "write"),
    "backend": ("compile", "codegen-cache-hit"),
    "timing": ("specialize", "specialize-cache-hit"),
    "bench": ("record",),
    "profiler": ("snapshot",),
    "diff": ("report",),
    "analysis": ("estimate",),
}

_SCALARS = (bool, int, float, str, type(None))


def new_run_id() -> str:
    """A fresh 12-hex run identifier (collision-safe per machine)."""
    return uuid.uuid4().hex[:12]


class EventBus:
    """Orders, stamps and fans one run's events out to attached sinks.

    Thread-safe: the runner's pool callbacks and heartbeat thread publish
    concurrently; ``seq`` and ``ts`` are assigned under one lock, so seq
    order and timestamp order always agree.
    """

    def __init__(self, run_id: str | None = None, clock=time.monotonic):
        self.run_id = run_id or new_run_id()
        self._clock = clock
        self._epoch = clock()
        self._seq = 0
        self._sinks: list = []
        self._lock = threading.Lock()

    def subscribe(self, sink) -> "EventBus":
        """Attach a sink (any callable taking one event dict)."""
        self._sinks.append(sink)
        return self

    def unsubscribe(self, sink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    def publish(self, source: str, type: str, data: dict | None = None) -> dict:
        """Stamp and fan out one event; returns the published dict."""
        with self._lock:
            event = {
                "schema": EVENTS_SCHEMA,
                "run_id": self.run_id,
                "seq": self._seq,
                "ts": round(self._clock() - self._epoch, 6),
                "source": source,
                "type": type,
                "data": {
                    key: value for key, value in (data or {}).items()
                    if isinstance(value, _SCALARS)
                },
            }
            self._seq += 1
            for sink in self._sinks:
                sink(event)
        return event

    def close(self) -> None:
        """Close every sink that supports closing (file handles)."""
        with self._lock:
            for sink in self._sinks:
                close = getattr(sink, "close", None)
                if callable(close):
                    close()
            self._sinks.clear()


class JsonlSink:
    """Appends each event as one JSON line; flushed so tails see it live."""

    def __init__(self, path):
        self.path = path
        parent = os.path.dirname(os.fspath(path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._handle = open(path, "a", encoding="utf-8")

    def __call__(self, event: dict) -> None:
        if self._handle.closed:
            return
        self._handle.write(json.dumps(event, separators=(",", ":")) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class RingBufferSink:
    """Keeps the newest ``capacity`` events in memory (tests, dashboards)."""

    def __init__(self, capacity: int = 4096):
        self._events: deque = deque(maxlen=capacity)

    def __call__(self, event: dict) -> None:
        self._events.append(event)

    @property
    def events(self) -> list[dict]:
        return list(self._events)


class MetricsSink:
    """Folds the stream into a metrics registry as labeled counters."""

    def __init__(self, registry):
        self.registry = registry

    def __call__(self, event: dict) -> None:
        self.registry.counter(
            "events.published",
            {"source": event["source"], "type": event["type"]},
        ).inc()


# -- the process-global active bus ----------------------------------------

_ACTIVE: EventBus | None = None
_ACTIVE_LOCK = threading.Lock()


def active_bus() -> EventBus | None:
    """The process-global bus deep subsystems publish to, if any."""
    return _ACTIVE


def set_active_bus(bus: EventBus | None) -> EventBus | None:
    """Install (or clear, with ``None``) the active bus; returns the old."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        previous = _ACTIVE
        _ACTIVE = bus
    return previous


def publish_event(source: str, type: str, data: dict | None = None) -> dict | None:
    """Publish to the active bus; a no-op returning None when none is set."""
    bus = _ACTIVE
    if bus is None:
        return None
    return bus.publish(source, type, data)


# -- reading a recorded ledger back ---------------------------------------

def load_ledger(path) -> list[dict]:
    """Parse a JSONL run ledger into its event dicts (blank lines skipped)."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def split_runs(events) -> list[tuple[str, list[dict]]]:
    """Group a ledger into per-run event lists, in first-seen order.

    A ledger file appended to across several invocations holds several
    runs; dashboards usually want the last one.
    """
    runs: dict[str, list[dict]] = {}
    for event in events:
        runs.setdefault(event.get("run_id", ""), []).append(event)
    return list(runs.items())
