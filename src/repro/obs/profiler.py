"""Pure-stdlib sampling profiler: where does host wall time go?

The simulators explain *simulated* cycles down to the issue slot, but
nothing explained the *host* seconds a run costs.  This module closes the
loop: a daemon thread wakes ``hz`` times per second, walks
``sys._current_frames()`` for the profiled thread(s), and attributes each
sample to a repro subsystem (cipher reference code, functional machine,
timing pipeline, cache I/O, ...) by matching stack filenames against
:data:`SUBSYSTEMS`.

Outputs, all derived from the same sample store:

* :meth:`SamplingProfiler.subsystem_table` -- the headline "where did the
  time go" breakdown printed by ``--profile`` on the CLI tools;
* :meth:`SamplingProfiler.collapsed` -- collapsed-stack text in the
  ``frame;frame;frame count`` format flamegraph.pl and speedscope load;
* :meth:`SamplingProfiler.top_functions` -- self-sample top-N table;
* :meth:`SamplingProfiler.record_metrics` -- ``profiler.*`` instruments
  folded into a :class:`repro.obs.MetricsRegistry`;
* :meth:`SamplingProfiler.trace_events` -- Perfetto counter samples on the
  same clock as a :class:`repro.obs.Tracer` (pass ``now_us=tracer.now_us``).

The profiler measures its own cost: every sampling pass is timed, and
:meth:`overhead_fraction` reports sampler seconds over profiled wall
seconds.  At the default ``DEFAULT_HZ`` the overhead is well under 5% of
wall time (asserted in ``tests/obs/test_profiler.py``).
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import Counter

#: Default sampling rate.  Prime, so the sampler does not phase-lock with
#: periodic behavior in the profiled workload.
DEFAULT_HZ = 97

#: Ordered ``(subsystem, path fragments)`` classification table.  A stack
#: is attributed to the first subsystem whose fragment matches a frame
#: filename, scanning the stack innermost-out; unmatched stacks fall into
#: ``"other"``.
SUBSYSTEMS = (
    ("cipher", ("repro/ciphers/",)),
    # Code generation for the compiled execution backend.  Stacks *running*
    # generated code carry the synthetic "<repro-compiled:...>" filename and
    # land in "functional"; only codegen/cache time lands here.
    ("compile", ("repro/sim/backends/compiled",)),
    ("functional", ("repro/sim/machine", "repro/sim/backends",
                    "<repro-compiled", "repro/kernels/", "repro/isa/")),
    ("timing", ("repro/sim/timing", "repro/sim/caches", "repro/sim/branch",
                "repro/sim/sboxcache", "repro/sim/memory",
                "repro/sim/trace", "repro/sim/config")),
    ("cache_io", ("repro/runner/cache",)),
    ("runner", ("repro/runner/",)),
    ("analysis", ("repro/analysis/",)),
    ("obs", ("repro/obs/",)),
)

OTHER = "other"


def classify_stack(filenames, subsystems=SUBSYSTEMS) -> str:
    """Attribute one stack (innermost filename first) to a subsystem."""
    for filename in filenames:
        normalized = filename.replace("\\", "/")
        for subsystem, fragments in subsystems:
            for fragment in fragments:
                if fragment in normalized:
                    return subsystem
    return OTHER


def _frame_label(frame) -> str:
    code = frame.f_code
    module = os.path.splitext(os.path.basename(code.co_filename))[0]
    return f"{module}:{code.co_name}"


class SamplingProfiler:
    """Background-thread statistical profiler for one (or all) threads.

    By default only the thread that calls :meth:`start` is sampled -- the
    CLI work thread -- so unrelated interpreter threads do not pollute the
    account.  Pass ``all_threads=True`` to sample every thread except the
    sampler itself.
    """

    def __init__(
        self,
        hz: int = DEFAULT_HZ,
        *,
        subsystems=SUBSYSTEMS,
        all_threads: bool = False,
        max_stack: int = 64,
        clock=time.perf_counter,
        now_us=None,
    ):
        if hz <= 0:
            raise ValueError("hz must be positive")
        self.hz = hz
        self.interval = 1.0 / hz
        self.subsystems = tuple(subsystems)
        self.all_threads = all_threads
        self.max_stack = max_stack
        self._clock = clock
        #: Timestamp source for exported trace events (microseconds); pass
        #: a :meth:`repro.obs.Tracer.now_us` to share the tracer timeline.
        self._now_us = now_us
        self._epoch = clock()
        self.samples = 0
        self.subsystem_samples: Counter = Counter()
        self.stack_samples: Counter = Counter()
        self.leaf_samples: Counter = Counter()
        #: Per-sample ``(ts_us, subsystem)`` timeline for trace export.
        self.timeline: list[tuple[float, str]] = []
        #: Seconds the sampler itself spent walking frames.
        self.overhead_seconds = 0.0
        #: Profiled wall seconds (start to stop).
        self.wall_seconds = 0.0
        self._target_ident: int | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._started_at = 0.0

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._target_ident = threading.get_ident()
        self._stop.clear()
        self._started_at = self._clock()
        self._thread = threading.Thread(
            target=self._sample_loop, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join()
        self._thread = None
        self.wall_seconds += self._clock() - self._started_at
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- the sampling loop -------------------------------------------------

    def _default_now_us(self) -> float:
        return (self._clock() - self._epoch) * 1e6

    def _sample_loop(self) -> None:
        clock = self._clock
        own_ident = threading.get_ident()
        now_us = self._now_us or self._default_now_us
        while not self._stop.is_set():
            began = clock()
            frames = sys._current_frames()
            for ident, frame in frames.items():
                if ident == own_ident:
                    continue
                if not self.all_threads and ident != self._target_ident:
                    continue
                self._record(frame, now_us())
            del frames
            self.overhead_seconds += clock() - began
            pause = self.interval - (clock() - began)
            if pause > 0:
                self._stop.wait(pause)

    def _record(self, frame, ts_us: float) -> None:
        filenames = []
        labels = []
        depth = 0
        while frame is not None and depth < self.max_stack:
            filenames.append(frame.f_code.co_filename)
            labels.append(_frame_label(frame))
            frame = frame.f_back
            depth += 1
        subsystem = classify_stack(filenames, self.subsystems)
        self.samples += 1
        self.subsystem_samples[subsystem] += 1
        # Collapsed-stack keys run root -> leaf, the flamegraph order.
        self.stack_samples[tuple(reversed(labels))] += 1
        self.leaf_samples[labels[0]] += 1
        self.timeline.append((ts_us, subsystem))

    # -- derived views -----------------------------------------------------

    def overhead_fraction(self) -> float:
        """Sampler seconds per profiled wall second (0.0 before any run)."""
        wall = self.wall_seconds
        if self.running:
            wall += self._clock() - self._started_at
        return self.overhead_seconds / wall if wall > 0 else 0.0

    def estimated_seconds(self, subsystem: str) -> float:
        """Wall-seconds estimate for one subsystem (samples / hz)."""
        return self.subsystem_samples.get(subsystem, 0) * self.interval

    def subsystem_table(self) -> str:
        """The headline time breakdown, one subsystem per line."""
        lines = [
            f"profiler: {self.samples} samples @ {self.hz} Hz over "
            f"{self.wall_seconds:.2f}s wall "
            f"(sampler overhead {self.overhead_fraction():.2%})"
        ]
        if not self.samples:
            lines.append("  (no samples -- workload too short for this hz)")
            return "\n".join(lines)
        for subsystem, count in self.subsystem_samples.most_common():
            share = count / self.samples
            lines.append(
                f"  {subsystem:<12} {share:>6.1%}  "
                f"~{count * self.interval:.2f}s  ({count} samples)"
            )
        return "\n".join(lines)

    def top_functions(self, limit: int = 10) -> list[tuple[str, int]]:
        """The ``limit`` functions with the most self (leaf) samples."""
        return self.leaf_samples.most_common(limit)

    def top_table(self, limit: int = 10) -> str:
        lines = [f"top {limit} functions by self samples:"]
        for label, count in self.top_functions(limit):
            share = count / self.samples if self.samples else 0.0
            lines.append(f"  {label:<40} {count:>6}  {share:>6.1%}")
        return "\n".join(lines)

    def collapsed(self) -> str:
        """Collapsed-stack text (``frame;frame count`` per line).

        Feed to flamegraph.pl or paste into https://www.speedscope.app.
        """
        lines = [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(self.stack_samples.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_collapsed(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.collapsed())

    # -- folding into the existing telemetry sinks -------------------------

    def record_metrics(self, registry) -> None:
        """Publish the sample account into a metrics registry."""
        for subsystem, count in sorted(self.subsystem_samples.items()):
            registry.counter(
                "profiler.samples", {"subsystem": subsystem}
            ).inc(count)
        registry.gauge("profiler.hz").set(self.hz)
        registry.gauge("profiler.wall_seconds").set(self.wall_seconds)
        registry.gauge("profiler.overhead_seconds").set(self.overhead_seconds)

    def trace_events(self, pid: int | None = None) -> list[dict]:
        """Perfetto counter samples: cumulative samples per subsystem.

        Stacked on one ``profiler.samples`` counter track; timestamps are
        on whatever clock ``now_us`` was bound to (the tracer's, when the
        profiler came from an :class:`repro.obs.Observability` session with
        tracing on).
        """
        pid = os.getpid() if pid is None else pid
        cumulative: Counter = Counter()
        events = []
        for ts_us, subsystem in self.timeline:
            cumulative[subsystem] += 1
            events.append({
                "name": "profiler.samples", "cat": "profiler", "ph": "C",
                "ts": ts_us, "pid": pid, "tid": 0,
                "args": {name: cumulative[name] for name in sorted(cumulative)},
            })
        return events
