"""Deterministic dashboard state for the unified run ledger.

:class:`DashState` consumes :mod:`repro.obs.events` events one at a time
and :func:`render` turns the accumulated state into a fixed-width text
frame.  Both are pure with respect to the event stream -- no wall clock,
no randomness -- so replaying a recorded ledger produces *exactly* the
frame a live dashboard showed at the same point in the stream.  That
property is the contract behind ``repro.tools.dash --replay`` (and is
asserted in ``tests/tools/test_dash.py``).

Panels rendered, each fed by one event source:

* run header -- run id, ledger clock, running/finished status;
* workers -- groups done/total progress bar, busy workers, ETA
  (``runner`` heartbeats);
* experiments -- completed-result count and the most recent results
  (``runner``/``result`` events);
* stalls -- issue-slot categories aggregated over every result,
  weighted by cycles (the ``slots.<category>`` fractions);
* cache -- hit/miss/write counts and the hit-rate bar;
* compile -- compiled-backend codegen activity (programs, wall time,
  source-cache hits, optimization counters);
* timing -- specialized timing-engine codegen activity (same shape,
  fed by ``timing``/``specialize`` events);
* analysis -- static cost-bound estimates (``analysis``/``estimate``
  events from ``repro.tools.analyze``): cells bracketed, unsound cells,
  and the median upper/lower gap;
* bench -- wall-seconds sparkline per recorded benchmark;
* diff -- recent run-comparison verdicts (``diff``/``report`` events
  from :mod:`repro.obs.diffing`), flagged when the runs differ;
* alerts -- stuck-worker warnings, newest last.
"""

from __future__ import annotations

from collections import Counter

from repro.obs.bench import sparkline

#: Width every frame is rendered at unless the caller overrides it.
DEFAULT_WIDTH = 78

#: Recent results kept for the experiments panel.
RECENT_RESULTS = 5

#: Recent comparison verdicts kept for the diff panel.
RECENT_DIFFS = 3


class DashState:
    """Accumulates one run's events into renderable aggregates."""

    def __init__(self):
        self.run_id: str | None = None
        self.last_ts = 0.0
        self.total_groups = 0
        self.total_experiments = 0
        self.done = 0
        self.busy = 0
        self.eta_seconds: float | None = None
        self.started = False
        self.finished = False
        self.results = 0
        self.recent: list[dict] = []
        self.stall_cycles: Counter = Counter()   # category -> weighted cycles
        self.total_cycles = 0
        self.cached_results = 0
        self.cache = Counter()                   # hit / miss / write
        self.compile_programs = 0
        self.compile_seconds = 0.0
        self.codegen_cache_hits = 0
        self.compile_counters: Counter = Counter()
        self.timing_programs = 0
        self.timing_seconds = 0.0
        self.timing_cache_hits = 0
        self.timing_counters: Counter = Counter()
        self.analysis_estimates = 0
        self.analysis_unsound = 0
        self.analysis_gaps: list[float] = []
        self.bench: dict[str, list[float]] = {}
        self.diffs: list[dict] = []
        self.stuck: list[tuple[str, float]] = []
        self.profile: dict[str, float] = {}

    def consume(self, event: dict) -> None:
        """Fold one ledger event into the state."""
        if self.run_id is None:
            self.run_id = event.get("run_id")
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            self.last_ts = max(self.last_ts, float(ts))
        source = event.get("source")
        type_ = event.get("type")
        data = event.get("data") or {}
        if source == "runner":
            self._consume_runner(type_, data)
        elif source == "cache":
            if type_ in ("hit", "miss", "write"):
                self.cache[type_] += 1
        elif source == "backend":
            if type_ == "compile":
                self.compile_programs += 1
                self.compile_seconds += data.get("seconds") or 0.0
                for key, value in data.items():
                    if key in ("digest", "mode", "seconds"):
                        continue
                    if isinstance(value, (int, float)) and value:
                        self.compile_counters[key] += int(value)
            elif type_ == "codegen-cache-hit":
                self.codegen_cache_hits += 1
        elif source == "timing":
            if type_ == "specialize":
                self.timing_programs += 1
                self.timing_seconds += data.get("seconds") or 0.0
                for key, value in data.items():
                    if key in ("digest", "mode", "config", "seconds"):
                        continue
                    if isinstance(value, (int, float)) and value:
                        self.timing_counters[key] += int(value)
            elif type_ == "specialize-cache-hit":
                self.timing_cache_hits += 1
        elif source == "analysis" and type_ == "estimate":
            self.analysis_estimates += 1
            if data.get("sound") is False:
                self.analysis_unsound += 1
            gap = data.get("gap")
            if isinstance(gap, (int, float)):
                self.analysis_gaps.append(float(gap))
        elif source == "bench" and type_ == "record":
            name = f"{data.get('suite', '?')}::{data.get('benchmark', '?')}"
            seconds = data.get("wall_seconds")
            if isinstance(seconds, (int, float)):
                self.bench.setdefault(name, []).append(float(seconds))
        elif source == "diff" and type_ == "report":
            self.diffs.append(data)
            del self.diffs[:-RECENT_DIFFS]
        elif source == "profiler" and type_ == "snapshot":
            self.profile = {
                key: float(value) for key, value in data.items()
                if isinstance(value, (int, float))
            }

    def _consume_runner(self, type_: str, data: dict) -> None:
        if type_ == "start":
            # A driver may run several sweeps on one bus; a new start
            # reopens the run so the header drops back to "running".
            self.started = True
            self.finished = False
            self.total_groups = data.get("total_groups") or 0
            self.total_experiments = data.get("total_experiments") or 0
            self.done = 0
            self.eta_seconds = None
        elif type_ in ("dispatch", "group-done", "heartbeat"):
            if data.get("busy") is not None:
                self.busy = data["busy"]
            if data.get("done") is not None:
                self.done = data["done"]
            if data.get("total"):
                self.total_groups = data["total"]
            if type_ == "heartbeat":
                self.eta_seconds = data.get("eta_seconds")
        elif type_ == "stuck":
            self.stuck.append(
                (data.get("group", "?"), data.get("quiet_seconds") or 0.0)
            )
        elif type_ == "finish":
            self.finished = True
            self.busy = 0
            if data.get("done") is not None:
                self.done = data["done"]
        elif type_ == "result":
            self.results += 1
            if data.get("cached"):
                self.cached_results += 1
            cycles = data.get("cycles") or 0
            self.total_cycles += cycles
            for key, value in data.items():
                if key.startswith("slots.") and isinstance(
                        value, (int, float)):
                    self.stall_cycles[key[len("slots."):]] += value * cycles
            self.recent.append(data)
            del self.recent[:-RECENT_RESULTS]


def build_state(events) -> DashState:
    """Consume an entire (single-run) event list into one state."""
    state = DashState()
    for event in events:
        state.consume(event)
    return state


# -- rendering -------------------------------------------------------------

def _bar(fraction: float, width: int) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "#" * filled + "-" * (width - filled)


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


def render(state: DashState, width: int = DEFAULT_WIDTH) -> str:
    """One text frame -- a pure function of the consumed events."""
    lines: list[str] = []
    rule = "=" * width
    status = ("finished" if state.finished
              else "running" if state.started else "idle")
    lines.append(rule)
    title = f" run {state.run_id or '?'} -- {status} "
    lines.append(title.center(width, "="))
    lines.append(rule)

    # workers / progress
    total = state.total_groups
    done = state.done
    fraction = (done / total) if total else 0.0
    bar_width = max(10, width - 30)
    progress = (f"groups {done}/{total}" if total
                else f"groups {done}")
    eta = ""
    if state.eta_seconds and not state.finished:
        eta = f"  eta ~{_fmt_seconds(state.eta_seconds)}"
    lines.append(
        f"[{_bar(fraction, bar_width)}] {progress}  "
        f"busy {state.busy}{eta}"
    )
    lines.append(f"ledger clock {state.last_ts:.3f}s")

    # experiments
    if state.results:
        lines.append("")
        cached = (f" ({state.cached_results} cached)"
                  if state.cached_results else "")
        lines.append(f"experiments: {state.results} results{cached}")
        for data in state.recent:
            cipher = data.get("cipher", "?")
            config = data.get("config", "?")
            cycles = data.get("cycles")
            ipc = data.get("ipc")
            flag = " [cache]" if data.get("cached") else ""
            lines.append(
                f"  {cipher:<10} {config:<6} "
                f"{cycles if cycles is not None else '?':>12} cycles  "
                f"ipc {ipc if ipc is not None else '?'}{flag}"
            )

    # stall attribution (cycle-weighted across every result)
    if state.total_cycles and state.stall_cycles:
        lines.append("")
        lines.append("issue slots (cycle-weighted):")
        bar_width = max(10, width - 36)
        for category, weighted in state.stall_cycles.most_common():
            fraction = weighted / state.total_cycles
            lines.append(
                f"  {category:<14} {_bar(fraction, bar_width)} "
                f"{fraction * 100:5.1f}%"
            )

    # cache
    hits, misses = state.cache["hit"], state.cache["miss"]
    if hits or misses or state.cache["write"]:
        lines.append("")
        lookups = hits + misses
        rate = (hits / lookups) if lookups else 0.0
        lines.append(
            f"cache: {hits} hit / {misses} miss / "
            f"{state.cache['write']} write  "
            f"[{_bar(rate, 20)}] {rate * 100:.0f}% hit rate"
        )

    # compiled backend
    if state.compile_programs or state.codegen_cache_hits:
        lines.append("")
        lines.append(
            f"compile: {state.compile_programs} program(s), "
            f"{state.compile_seconds * 1000:.1f} ms codegen, "
            f"{state.codegen_cache_hits} source-cache hit(s)"
        )
        if state.compile_counters:
            parts = [f"{key.replace('_', ' ')} {value}" for key, value
                     in sorted(state.compile_counters.items())]
            row = "  "
            for part in parts:
                if len(row) > 2 and len(row) + len(part) + 2 > width:
                    lines.append(row)
                    row = "  "
                row += part if row == "  " else f", {part}"
            if row.strip():
                lines.append(row)

    # specialized timing engine
    if state.timing_programs or state.timing_cache_hits:
        lines.append("")
        lines.append(
            f"timing: {state.timing_programs} specialization(s), "
            f"{state.timing_seconds * 1000:.1f} ms codegen, "
            f"{state.timing_cache_hits} code-cache hit(s)"
        )
        if state.timing_counters:
            parts = [f"{key.replace('_', ' ')} {value}" for key, value
                     in sorted(state.timing_counters.items())]
            row = "  "
            for part in parts:
                if len(row) > 2 and len(row) + len(part) + 2 > width:
                    lines.append(row)
                    row = "  "
                row += part if row == "  " else f", {part}"
            if row.strip():
                lines.append(row)

    # static cost-bound estimates
    if state.analysis_estimates:
        lines.append("")
        soundness = (f"{state.analysis_unsound} UNSOUND"
                     if state.analysis_unsound else "all sound")
        gap = ""
        if state.analysis_gaps:
            ordered = sorted(state.analysis_gaps)
            middle = len(ordered) // 2
            median = (ordered[middle] if len(ordered) % 2
                      else (ordered[middle - 1] + ordered[middle]) / 2)
            gap = f", median gap {median:.2f}x"
        lines.append(
            f"analysis: {state.analysis_estimates} estimate(s), "
            f"{soundness}{gap}"
        )

    # bench history
    if state.bench:
        lines.append("")
        lines.append("bench:")
        for name, seconds in sorted(state.bench.items()):
            lines.append(
                f"  {name:<40} {sparkline(seconds)} "
                f"last {seconds[-1]:.3f}s"
            )

    # run comparisons
    if state.diffs:
        lines.append("")
        lines.append("diff:")
        for data in state.diffs:
            mark = "==" if data.get("identical") else "!="
            pair = f"{data.get('a', '?')} vs {data.get('b', '?')}"
            lines.append(f"  {mark} [{data.get('kind', '?')}] {pair}")
            verdict = data.get("verdict")
            if verdict:
                lines.append(f"     {verdict}")

    # profiler snapshot
    if state.profile:
        lines.append("")
        parts = [f"{subsystem} {seconds:.2f}s" for subsystem, seconds
                 in sorted(state.profile.items(),
                           key=lambda item: -item[1])[:6]]
        lines.append("profile: " + ", ".join(parts))

    # alerts
    if state.stuck:
        lines.append("")
        for group, quiet in state.stuck[-3:]:
            lines.append(
                f"! stuck: {group} quiet {_fmt_seconds(quiet)}"
            )

    lines.append(rule)
    return "\n".join(line[:width] for line in lines)
