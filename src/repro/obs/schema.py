"""Validators for the exported observability documents.

Pure-Python structural checks (no jsonschema dependency): each validator
returns a list of human-readable error strings, empty when the document
conforms.  CI and ``repro.tools.obs --check`` run these against freshly
exported files; tests run them against in-memory snapshots.

The schemas themselves are documented in ``docs/observability.md``.
"""

from __future__ import annotations

METRICS_SCHEMA = "repro.obs.metrics/1"
BENCH_SCHEMA = "repro.obs.bench/1"
LINT_SCHEMA = "repro.isa.verify/1"
EVENTS_SCHEMA = "repro.obs.events/1"
DIFF_SCHEMA = "repro.obs.diff/1"
ANALYSIS_SCHEMA = "repro.isa.analysis/1"

_DIFF_KINDS = ("stats", "metrics", "ledger", "bench")

_LINT_SEVERITIES = ("info", "warning", "error")

_METRIC_TYPES = ("counter", "gauge", "histogram")
_EVENT_PHASES = ("X", "B", "E", "i", "I", "C", "M")
_SCALARS = (bool, int, float, str, type(None))


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_metrics(document) -> list[str]:
    """Check a ``repro.obs.metrics/1`` document; return error strings."""
    errors: list[str] = []
    if not isinstance(document, dict):
        return [f"metrics document must be an object, got {type(document).__name__}"]
    if document.get("schema") != METRICS_SCHEMA:
        errors.append(
            f"schema must be {METRICS_SCHEMA!r}, got {document.get('schema')!r}"
        )
    if "extra" in document and not isinstance(document["extra"], dict):
        errors.append("extra must be an object when present")
    metrics = document.get("metrics")
    if not isinstance(metrics, list):
        errors.append("metrics must be a list")
        return errors
    for index, metric in enumerate(metrics):
        where = f"metrics[{index}]"
        if not isinstance(metric, dict):
            errors.append(f"{where}: must be an object")
            continue
        if not isinstance(metric.get("name"), str) or not metric.get("name"):
            errors.append(f"{where}: missing non-empty 'name'")
        kind = metric.get("type")
        if kind not in _METRIC_TYPES:
            errors.append(f"{where}: type must be one of {_METRIC_TYPES}")
            continue
        labels = metric.get("labels")
        if not isinstance(labels, dict) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in labels.items()
        ):
            errors.append(f"{where}: labels must be a str->str object")
        if kind in ("counter", "gauge"):
            if not _is_number(metric.get("value")):
                errors.append(f"{where}: missing numeric 'value'")
            if kind == "counter" and _is_number(metric.get("value")) \
                    and metric["value"] < 0:
                errors.append(f"{where}: counter value must be >= 0")
        else:
            errors.extend(_validate_histogram(metric, where))
    return errors


def _validate_histogram(metric: dict, where: str) -> list[str]:
    errors: list[str] = []
    if not _is_number(metric.get("count")) or metric.get("count", -1) < 0:
        errors.append(f"{where}: histogram needs a non-negative 'count'")
    if not _is_number(metric.get("sum")):
        errors.append(f"{where}: histogram needs a numeric 'sum'")
    buckets = metric.get("buckets")
    if not isinstance(buckets, list) or not buckets:
        return errors + [f"{where}: histogram needs a non-empty 'buckets' list"]
    previous = -1
    for bindex, bucket in enumerate(buckets):
        bwhere = f"{where}.buckets[{bindex}]"
        if not isinstance(bucket, dict):
            errors.append(f"{bwhere}: must be an object")
            continue
        bound = bucket.get("le")
        last = bindex == len(buckets) - 1
        if last and bound != "+inf":
            errors.append(f"{bwhere}: final bucket bound must be '+inf'")
        if not last and not _is_number(bound):
            errors.append(f"{bwhere}: bound 'le' must be numeric")
        count = bucket.get("count")
        if not _is_number(count) or count < previous:
            errors.append(f"{bwhere}: counts must be cumulative and numeric")
        else:
            previous = count
    if not errors and _is_number(metric.get("count")) \
            and buckets[-1].get("count") != metric["count"]:
        errors.append(f"{where}: +inf bucket count must equal 'count'")
    return errors


def validate_bench(document) -> list[str]:
    """Check one ``repro.obs.bench/1`` history record; return errors."""
    if not isinstance(document, dict):
        return [f"bench record must be an object, got {type(document).__name__}"]
    errors: list[str] = []
    if document.get("schema") != BENCH_SCHEMA:
        errors.append(
            f"schema must be {BENCH_SCHEMA!r}, got {document.get('schema')!r}"
        )
    for key in ("suite", "benchmark"):
        if not isinstance(document.get(key), str) or not document.get(key):
            errors.append(f"missing non-empty '{key}'")
    wall = document.get("wall_seconds")
    if not _is_number(wall) or wall < 0:
        errors.append("'wall_seconds' must be a non-negative number")
    if "throughput" in document:
        throughput = document["throughput"]
        if throughput is not None and (not _is_number(throughput)
                                       or throughput < 0):
            errors.append("'throughput' must be a non-negative number or null")
    if "peak_memory_bytes" in document:
        peak = document["peak_memory_bytes"]
        if peak is not None and (not isinstance(peak, int)
                                 or isinstance(peak, bool) or peak < 0):
            errors.append("'peak_memory_bytes' must be a non-negative "
                          "integer or null")
    env = document.get("env")
    if not isinstance(env, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in env.items()
    ):
        errors.append("'env' must be a str->str object")
    extra = document.get("extra", {})
    if not isinstance(extra, dict) or not all(
        isinstance(k, str) and isinstance(v, _SCALARS)
        for k, v in extra.items()
    ):
        errors.append("'extra' must be a str->scalar object")
    if not isinstance(document.get("recorded_at"), str) \
            or not document.get("recorded_at"):
        errors.append("missing non-empty 'recorded_at'")
    return errors


def validate_bench_history(documents) -> list[str]:
    """Check a loaded bench-history line list; errors carry line numbers."""
    if not isinstance(documents, list):
        return ["bench history must be a list of records"]
    errors: list[str] = []
    for index, document in enumerate(documents):
        errors.extend(
            f"line {index + 1}: {error}"
            for error in validate_bench(document)
        )
    return errors


def validate_lint(document) -> list[str]:
    """Check a ``repro.isa.verify/1`` lint report; return error strings."""
    if not isinstance(document, dict):
        return [f"lint document must be an object, got {type(document).__name__}"]
    errors: list[str] = []
    if document.get("schema") != LINT_SCHEMA:
        errors.append(
            f"schema must be {LINT_SCHEMA!r}, got {document.get('schema')!r}"
        )
    if not isinstance(document.get("generated_by"), str) \
            or not document.get("generated_by"):
        errors.append("missing non-empty 'generated_by'")
    programs = document.get("programs")
    if not isinstance(programs, list):
        errors.append("'programs' must be a list")
        return errors
    for index, program in enumerate(programs):
        where = f"programs[{index}]"
        if not isinstance(program, dict):
            errors.append(f"{where}: must be an object")
            continue
        if not isinstance(program.get("program"), str) \
                or not program.get("program"):
            errors.append(f"{where}: missing non-empty 'program'")
        count = program.get("instructions")
        if not isinstance(count, int) or isinstance(count, bool) or count < 0:
            errors.append(f"{where}: 'instructions' must be a non-negative "
                          "integer")
        summary = program.get("summary")
        if not isinstance(summary, dict) or not all(
            key in _LINT_SEVERITIES and isinstance(value, int)
            and not isinstance(value, bool) and value >= 0
            for key, value in summary.items()
        ):
            errors.append(f"{where}: 'summary' must map severities to "
                          "non-negative counts")
        if "critical_path_cycles" in program:
            bound = program["critical_path_cycles"]
            if not isinstance(bound, int) or isinstance(bound, bool) \
                    or bound < 0:
                errors.append(f"{where}: 'critical_path_cycles' must be a "
                              "non-negative integer")
        diagnostics = program.get("diagnostics")
        if not isinstance(diagnostics, list):
            errors.append(f"{where}: 'diagnostics' must be a list")
            continue
        for dindex, diagnostic in enumerate(diagnostics):
            dwhere = f"{where}.diagnostics[{dindex}]"
            if not isinstance(diagnostic, dict):
                errors.append(f"{dwhere}: must be an object")
                continue
            if not isinstance(diagnostic.get("checker"), str) \
                    or not diagnostic.get("checker"):
                errors.append(f"{dwhere}: missing non-empty 'checker'")
            if diagnostic.get("severity") not in _LINT_SEVERITIES:
                errors.append(f"{dwhere}: severity must be one of "
                              f"{_LINT_SEVERITIES}")
            if not isinstance(diagnostic.get("message"), str) \
                    or not diagnostic.get("message"):
                errors.append(f"{dwhere}: missing non-empty 'message'")
            anchor = diagnostic.get("index")
            if anchor is not None and (not isinstance(anchor, int)
                                       or isinstance(anchor, bool)
                                       or anchor < 0):
                errors.append(f"{dwhere}: 'index' must be a non-negative "
                              "integer or null")
            if "detail" in diagnostic \
                    and not isinstance(diagnostic["detail"], dict):
                errors.append(f"{dwhere}: 'detail' must be an object")
        summary_ok = isinstance(summary, dict) and all(
            isinstance(value, int) for value in summary.values()
        )
        if summary_ok and all(
            isinstance(d, dict) for d in diagnostics
        ):
            counted: dict[str, int] = {}
            for diagnostic in diagnostics:
                severity = diagnostic.get("severity")
                if isinstance(severity, str):
                    counted[severity] = counted.get(severity, 0) + 1
            for severity, count in counted.items():
                if summary.get(severity, 0) != count:
                    errors.append(
                        f"{where}: summary[{severity!r}] disagrees with the "
                        f"diagnostics list ({summary.get(severity, 0)} != "
                        f"{count})"
                    )
    return errors


def _nested_numbers(value) -> bool:
    """True when ``value`` is numbers nested in str-keyed objects."""
    if _is_number(value):
        return True
    if isinstance(value, dict):
        return all(
            isinstance(key, str) and _nested_numbers(entry)
            for key, entry in value.items()
        )
    return False


def validate_analysis(document) -> list[str]:
    """Check a ``repro.isa.analysis/1`` cost report; return error strings.

    Beyond shape, this enforces the report's own invariants: every
    program's ``lower_bound <= upper_bound``, and wherever a simulated
    cycle count is attached, the recorded ``sound`` flag must agree with
    ``lower_bound <= simulated_cycles <= upper_bound``.
    """
    if not isinstance(document, dict):
        return [
            f"analysis document must be an object, got {type(document).__name__}"
        ]
    errors: list[str] = []
    if document.get("schema") != ANALYSIS_SCHEMA:
        errors.append(
            f"schema must be {ANALYSIS_SCHEMA!r}, got {document.get('schema')!r}"
        )
    if not isinstance(document.get("generated_by"), str) \
            or not document.get("generated_by"):
        errors.append("missing non-empty 'generated_by'")
    if "summary" in document and not _scalar_object(document["summary"]):
        errors.append("'summary' must be a str->scalar object")
    programs = document.get("programs")
    if not isinstance(programs, list):
        errors.append("'programs' must be a list")
        return errors
    for index, program in enumerate(programs):
        where = f"programs[{index}]"
        if not isinstance(program, dict):
            errors.append(f"{where}: must be an object")
            continue
        for key in ("program", "config"):
            if not isinstance(program.get(key), str) or not program.get(key):
                errors.append(f"{where}: missing non-empty {key!r}")
        for key in ("instructions", "lower_bound", "upper_bound"):
            value = program.get(key)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 0:
                errors.append(f"{where}: {key!r} must be a non-negative "
                              "integer")
        lower = program.get("lower_bound")
        upper = program.get("upper_bound")
        bounds_ok = (
            isinstance(lower, int) and isinstance(upper, int)
            and not isinstance(lower, bool) and not isinstance(upper, bool)
        )
        if bounds_ok and lower > upper:
            errors.append(f"{where}: lower_bound must not exceed "
                          "upper_bound")
        if "gap" in program and program["gap"] is not None \
                and not _is_number(program["gap"]):
            errors.append(f"{where}: 'gap' must be a number or null")
        if "components" in program \
                and not _nested_numbers(program["components"]):
            errors.append(f"{where}: 'components' must be numbers nested "
                          "in str-keyed objects")
        simulated = program.get("simulated_cycles")
        if "simulated_cycles" in program and simulated is not None and (
            not isinstance(simulated, int) or isinstance(simulated, bool)
            or simulated < 0
        ):
            errors.append(f"{where}: 'simulated_cycles' must be a "
                          "non-negative integer or null")
            simulated = None
        if "sound" in program and not isinstance(program["sound"], bool):
            errors.append(f"{where}: 'sound' must be a boolean")
        elif bounds_ok and isinstance(simulated, int) \
                and not isinstance(simulated, bool) \
                and isinstance(program.get("sound"), bool):
            actual = lower <= simulated <= upper
            if program["sound"] != actual:
                errors.append(
                    f"{where}: 'sound' is {program['sound']} but "
                    f"{lower} <= {simulated} <= {upper} is {actual}"
                )
    return errors


def validate_event(document) -> list[str]:
    """Check one ``repro.obs.events/1`` ledger event; return errors."""
    if not isinstance(document, dict):
        return [f"event must be an object, got {type(document).__name__}"]
    errors: list[str] = []
    if document.get("schema") != EVENTS_SCHEMA:
        errors.append(
            f"schema must be {EVENTS_SCHEMA!r}, got {document.get('schema')!r}"
        )
    if not isinstance(document.get("run_id"), str) \
            or not document.get("run_id"):
        errors.append("missing non-empty 'run_id'")
    seq = document.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        errors.append("'seq' must be a non-negative integer")
    ts = document.get("ts")
    if not _is_number(ts) or ts < 0:
        errors.append("'ts' must be a non-negative number "
                      "(seconds since run start)")
    for key in ("source", "type"):
        if not isinstance(document.get(key), str) or not document.get(key):
            errors.append(f"missing non-empty '{key}'")
    data = document.get("data")
    if not isinstance(data, dict) or not all(
        isinstance(k, str) and isinstance(v, _SCALARS)
        for k, v in data.items()
    ):
        errors.append("'data' must be a str->scalar object")
    return errors


def validate_event_ledger(documents) -> list[str]:
    """Check a loaded event-ledger line list; errors carry line numbers.

    Beyond per-event shape this checks the ledger invariants: within each
    ``run_id``, sequence numbers are contiguous from 0 and timestamps
    never go backwards (the bus assigns both under one lock).
    """
    if not isinstance(documents, list):
        return ["event ledger must be a list of events"]
    errors: list[str] = []
    last_seq: dict[str, int] = {}
    last_ts: dict[str, float] = {}
    for index, document in enumerate(documents):
        line = f"line {index + 1}"
        event_errors = validate_event(document)
        errors.extend(f"{line}: {error}" for error in event_errors)
        if event_errors:
            continue
        run_id = document["run_id"]
        expected = last_seq.get(run_id, -1) + 1
        if document["seq"] != expected:
            errors.append(
                f"{line}: run {run_id} seq must be {expected} "
                f"(contiguous), got {document['seq']}"
            )
        last_seq[run_id] = max(last_seq.get(run_id, -1), document["seq"])
        if document["ts"] < last_ts.get(run_id, 0.0):
            errors.append(
                f"{line}: run {run_id} ts went backwards "
                f"({document['ts']} < {last_ts[run_id]})"
            )
        last_ts[run_id] = max(last_ts.get(run_id, 0.0), document["ts"])
    return errors


def validate_trace_events(document) -> list[str]:
    """Check a Chrome/Perfetto trace document (object or bare event list)."""
    errors: list[str] = []
    if isinstance(document, dict):
        events = document.get("traceEvents")
        if not isinstance(events, list):
            return ["trace document must contain a 'traceEvents' list"]
    elif isinstance(document, list):
        events = document
    else:
        return [f"trace document must be an object or list, "
                f"got {type(document).__name__}"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: must be an object")
            continue
        phase = event.get("ph")
        if phase not in _EVENT_PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: missing 'name'")
        if not isinstance(event.get("pid"), int):
            errors.append(f"{where}: missing integer 'pid'")
        if phase != "M" and not _is_number(event.get("ts")):
            errors.append(f"{where}: missing numeric 'ts'")
        if phase == "X" and (not _is_number(event.get("dur"))
                             or event.get("dur", -1) < 0):
            errors.append(f"{where}: complete event needs non-negative 'dur'")
        if "args" in event and not isinstance(event["args"], dict):
            errors.append(f"{where}: args must be an object")
    return errors


def _scalar_object(value) -> bool:
    return isinstance(value, dict) and all(
        isinstance(k, str) and isinstance(v, _SCALARS)
        for k, v in value.items()
    )


def _delta_rows(rows, where: str, key_field: str) -> list[str]:
    """Shared shape check for ranked delta tables (a, b, delta per row)."""
    errors: list[str] = []
    if not isinstance(rows, list):
        return [f"{where}: must be a list"]
    for index, row in enumerate(rows):
        rwhere = f"{where}[{index}]"
        if not isinstance(row, dict):
            errors.append(f"{rwhere}: must be an object")
            continue
        if not isinstance(row.get(key_field), str) or not row.get(key_field):
            errors.append(f"{rwhere}: missing non-empty {key_field!r}")
        for side in ("a", "b", "delta"):
            if not _is_number(row.get(side)):
                errors.append(f"{rwhere}: missing numeric {side!r}")
        if (_is_number(row.get("a")) and _is_number(row.get("b"))
                and _is_number(row.get("delta"))
                and row["b"] - row["a"] != row["delta"]):
            errors.append(f"{rwhere}: delta must equal b - a")
    return errors


def _validate_diff_stats(section, where: str) -> list[str]:
    if not isinstance(section, dict):
        return [f"{where}: must be an object"]
    errors: list[str] = []
    errors.extend(_delta_rows(section.get("counters", []),
                              f"{where}.counters", "name"))
    errors.extend(_delta_rows(section.get("stall_slots", []),
                              f"{where}.stall_slots", "category"))
    errors.extend(_delta_rows(section.get("wait_cycles", []),
                              f"{where}.wait_cycles", "category"))
    invariant = section.get("invariant", [])
    if not isinstance(invariant, list):
        errors.append(f"{where}.invariant: must be a list")
    else:
        for index, entry in enumerate(invariant):
            iwhere = f"{where}.invariant[{index}]"
            if not isinstance(entry, dict):
                errors.append(f"{iwhere}: must be an object")
                continue
            if entry.get("side") not in ("a", "b"):
                errors.append(f"{iwhere}: side must be 'a' or 'b'")
            if not isinstance(entry.get("ok"), bool):
                errors.append(f"{iwhere}: missing boolean 'ok'")
    hotspots = section.get("hotspots", [])
    if not isinstance(hotspots, list):
        errors.append(f"{where}.hotspots: must be a list")
    else:
        for index, row in enumerate(hotspots):
            hwhere = f"{where}.hotspots[{index}]"
            if not isinstance(row, dict):
                errors.append(f"{hwhere}: must be an object")
                continue
            static = row.get("static_index")
            if not isinstance(static, int) or isinstance(static, bool) \
                    or static < 0:
                errors.append(f"{hwhere}: 'static_index' must be a "
                              "non-negative integer")
            if not isinstance(row.get("text"), str) or not row.get("text"):
                errors.append(f"{hwhere}: missing non-empty 'text'")
            for side in ("a", "b", "delta"):
                if not _is_number(row.get(side)):
                    errors.append(f"{hwhere}: missing numeric {side!r}")
            categories = row.get("categories")
            if not isinstance(categories, dict) or not all(
                isinstance(k, str) and _is_number(v)
                for k, v in categories.items()
            ):
                errors.append(f"{hwhere}: 'categories' must be a "
                              "str->number object")
    if "hotspots_complete" in section \
            and not isinstance(section["hotspots_complete"], bool):
        errors.append(f"{where}: 'hotspots_complete' must be a boolean")
    return errors


def _validate_diff_phases(rows, where: str) -> list[str]:
    if not isinstance(rows, list):
        return [f"{where}: must be a list"]
    errors: list[str] = []
    for index, row in enumerate(rows):
        rwhere = f"{where}[{index}]"
        if not isinstance(row, dict):
            errors.append(f"{rwhere}: must be an object")
            continue
        for key in ("source", "type"):
            if not isinstance(row.get(key), str) or not row.get(key):
                errors.append(f"{rwhere}: missing non-empty {key!r}")
        for key in ("a_count", "b_count", "delta_count"):
            if not isinstance(row.get(key), int) \
                    or isinstance(row.get(key), bool):
                errors.append(f"{rwhere}: {key!r} must be an integer")
        for key in ("a_seconds", "b_seconds", "delta_seconds"):
            if not _is_number(row.get(key)):
                errors.append(f"{rwhere}: missing numeric {key!r}")
    return errors


def _validate_diff_metrics(rows, where: str) -> list[str]:
    if not isinstance(rows, list):
        return [f"{where}: must be a list"]
    errors: list[str] = []
    for index, row in enumerate(rows):
        rwhere = f"{where}[{index}]"
        if not isinstance(row, dict):
            errors.append(f"{rwhere}: must be an object")
            continue
        if not isinstance(row.get("name"), str) or not row.get("name"):
            errors.append(f"{rwhere}: missing non-empty 'name'")
        for side in ("a", "b"):
            value = row.get(side)
            if value is not None and not _is_number(value):
                errors.append(f"{rwhere}: {side!r} must be a number or null")
        if not _is_number(row.get("delta")):
            errors.append(f"{rwhere}: missing numeric 'delta'")
        if "noisy" in row and not isinstance(row["noisy"], bool):
            errors.append(f"{rwhere}: 'noisy' must be a boolean")
        if "noise_floor" in row and not _is_number(row["noise_floor"]):
            errors.append(f"{rwhere}: 'noise_floor' must be a number")
    return errors


def validate_diff(document) -> list[str]:
    """Check a ``repro.obs.diff/1`` run-comparison report; return errors."""
    if not isinstance(document, dict):
        return [f"diff report must be an object, got {type(document).__name__}"]
    errors: list[str] = []
    if document.get("schema") != DIFF_SCHEMA:
        errors.append(
            f"schema must be {DIFF_SCHEMA!r}, got {document.get('schema')!r}"
        )
    if not isinstance(document.get("generated_by"), str) \
            or not document.get("generated_by"):
        errors.append("missing non-empty 'generated_by'")
    if document.get("kind") not in _DIFF_KINDS:
        errors.append(f"'kind' must be one of {_DIFF_KINDS}")
    if not isinstance(document.get("identical"), bool):
        errors.append("missing boolean 'identical'")
    if not isinstance(document.get("verdict"), str) \
            or not document.get("verdict"):
        errors.append("missing non-empty 'verdict'")
    for side in ("a", "b"):
        if not _scalar_object(document.get(side)):
            errors.append(f"{side!r} must be a str->scalar object "
                          "describing that run")
    if "stats" in document:
        errors.extend(_validate_diff_stats(document["stats"], "stats"))
    if "phases" in document:
        errors.extend(_validate_diff_phases(document["phases"], "phases"))
    if "metrics" in document:
        errors.extend(_validate_diff_metrics(document["metrics"], "metrics"))
    if "bench" in document and not _scalar_object(document["bench"]):
        errors.append("'bench' must be a str->scalar object")
    if not any(key in document for key in ("stats", "phases", "metrics",
                                           "bench")):
        errors.append("report must carry at least one comparison section "
                      "(stats/phases/metrics/bench)")
    return errors
