"""The CLI-facing observability bundle.

Every experiment-running tool accepts ``--metrics-out`` / ``--trace-out``
(see :func:`repro.tools.cli.add_observability_arguments`) plus the
``--profile`` family and ``--events-out``; this class turns those
optional flags into the registry/tracer/profiler/event-bus bundle handed
to the :class:`repro.runner.Runner`, and writes the files on
:meth:`write`.  When no telemetry was requested, ``metrics``, ``tracer``,
``profiler`` and ``bus`` stay ``None`` and the instrumented code paths
cost nothing.

Use the session as a context manager around the tool's work so the
sampling profiler covers exactly the measured region::

    obs = observability_from_args(args, tool="riscasim")
    with obs:
        ...run experiments...
    for line in obs.report():
        print(line)
    for path in obs.write():
        print(f"wrote {path}")

Written metrics snapshots are stamped with the environment fingerprint
(git sha, python version, platform, hostname, resolved simulator
backend) under ``extra.environment`` so exported telemetry artifacts
are attributable to a commit.

``events_out`` opens the unified run ledger (:mod:`repro.obs.events`):
an :class:`EventBus` with a JSONL sink at that path, installed as the
process-wide *active bus* for the duration of the session so deep
publishers (the compiled backend's codegen, the bench recorder) reach
the same ledger as the runner and cache.  ``repro.tools.dash`` renders
the ledger live (``--follow``) or after the fact (``--replay``).
"""

from __future__ import annotations

from repro.obs.events import EventBus, JsonlSink, MetricsSink, set_active_bus
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import DEFAULT_HZ, SamplingProfiler
from repro.obs.tracing import Tracer


class Observability:
    """Optional metrics registry + tracer + profiler + event bus."""

    def __init__(
        self,
        metrics_out: str | None = None,
        trace_out: str | None = None,
        tool: str | None = None,
        profile: bool = False,
        profile_hz: int = DEFAULT_HZ,
        profile_out: str | None = None,
        events_out: str | None = None,
        run_id: str | None = None,
    ):
        self.metrics_out = metrics_out
        self.trace_out = trace_out
        self.tool = tool
        self.profile_out = profile_out
        self.events_out = events_out
        #: Resolved simulator backend name; the CLI layer stamps this so
        #: metrics snapshots and bench records name the engine that
        #: produced them.
        self.backend: str | None = None
        #: Resolved timing-engine name, stamped the same way.
        self.timing_engine: str | None = None
        self.metrics: MetricsRegistry | None = (
            MetricsRegistry() if metrics_out else None
        )
        self.tracer: Tracer | None = Tracer() if trace_out else None
        self.profiler: SamplingProfiler | None = None
        if profile or profile_out:
            self.profiler = SamplingProfiler(
                hz=profile_hz,
                now_us=self.tracer.now_us if self.tracer else None,
            )
        self.bus: EventBus | None = None
        if events_out:
            self.bus = EventBus(run_id=run_id)
            self.bus.subscribe(JsonlSink(events_out))
            if self.metrics is not None:
                self.bus.subscribe(MetricsSink(self.metrics))
        self._previous_bus: EventBus | None = None
        self._finished = False

    @property
    def enabled(self) -> bool:
        return (self.metrics is not None or self.tracer is not None
                or self.profiler is not None or self.bus is not None)

    # -- profiled region ---------------------------------------------------

    def __enter__(self) -> "Observability":
        if self.profiler is not None and not self.profiler.running:
            self.profiler.start()
        if self.bus is not None:
            self._previous_bus = set_active_bus(self.bus)
        return self

    def __exit__(self, *exc) -> None:
        self.finish()

    def finish(self) -> None:
        """Stop the profiler, fold counters into metrics, close the bus."""
        if self._finished:
            return
        self._finished = True
        if self.profiler is not None:
            self.profiler.stop()
            if self.metrics is not None:
                self.profiler.record_metrics(self.metrics)
            if self.tracer is not None:
                self.tracer.add_events(
                    self.profiler.trace_events(pid=self.tracer.pid)
                )
            if self.bus is not None:
                snapshot = {
                    subsystem: round(
                        self.profiler.estimated_seconds(subsystem), 6)
                    for subsystem, _count in
                    self.profiler.subsystem_samples.most_common()
                }
                self.bus.publish("profiler", "snapshot", snapshot)
        if self.metrics is not None:
            # Per-program codegen counters accumulate module-side in the
            # compiled backend; fold whatever this process compiled.
            from repro.sim.backends.compiled import (
                compile_reports,
                record_compile_metrics,
            )
            if compile_reports():
                record_compile_metrics(self.metrics)
            # Same for the specialized timing engine's per-(program,
            # config) specialization counters.
            from repro.sim.timing.specialized import (
                record_timing_metrics,
                specialization_reports,
            )
            if specialization_reports():
                record_timing_metrics(self.metrics)
        if self.bus is not None:
            set_active_bus(self._previous_bus)
            self._previous_bus = None
            self.bus.close()

    def report(self) -> list[str]:
        """Human-readable summary lines (profiler breakdown, when on)."""
        if self.profiler is None:
            return []
        self.finish()
        lines = self.profiler.subsystem_table().splitlines()
        if self.profiler.samples:
            lines.extend(self.profiler.top_table(5).splitlines())
        return lines

    # -- export ------------------------------------------------------------

    def write(self) -> list[str]:
        """Write whichever outputs were requested; returns written paths."""
        from repro.obs.bench import environment_fingerprint

        self.finish()
        written: list[str] = []
        if self.metrics is not None and self.metrics_out:
            environment = environment_fingerprint()
            if self.backend:
                environment["backend"] = self.backend
            if self.timing_engine:
                environment["timing_engine"] = self.timing_engine
            self.metrics.write(
                self.metrics_out,
                generated_by=self.tool,
                extra={"environment": environment},
            )
            written.append(self.metrics_out)
        if self.tracer is not None and self.trace_out:
            self.tracer.write(self.trace_out)
            written.append(self.trace_out)
        if self.profiler is not None and self.profile_out:
            self.profiler.write_collapsed(self.profile_out)
            written.append(self.profile_out)
        if self.events_out and self.events_out not in written:
            written.append(self.events_out)
        return written
