"""The CLI-facing observability bundle.

Every experiment-running tool accepts ``--metrics-out`` / ``--trace-out``
(see :func:`repro.tools.cli.add_observability_arguments`); this class
turns those two optional paths into the registry/tracer pair handed to
the :class:`repro.runner.Runner`, and writes the files on :meth:`write`.
When neither path is given, ``metrics`` and ``tracer`` stay ``None`` and
the instrumented code paths cost nothing.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


class Observability:
    """Optional metrics registry + tracer bound to their output paths."""

    def __init__(
        self,
        metrics_out: str | None = None,
        trace_out: str | None = None,
        tool: str | None = None,
    ):
        self.metrics_out = metrics_out
        self.trace_out = trace_out
        self.tool = tool
        self.metrics: MetricsRegistry | None = (
            MetricsRegistry() if metrics_out else None
        )
        self.tracer: Tracer | None = Tracer() if trace_out else None

    @property
    def enabled(self) -> bool:
        return self.metrics is not None or self.tracer is not None

    def write(self) -> list[str]:
        """Write whichever outputs were requested; returns written paths."""
        written: list[str] = []
        if self.metrics is not None and self.metrics_out:
            self.metrics.write(self.metrics_out, generated_by=self.tool)
            written.append(self.metrics_out)
        if self.tracer is not None and self.trace_out:
            self.tracer.write(self.trace_out)
            written.append(self.trace_out)
        return written
