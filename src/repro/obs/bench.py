"""Append-only benchmark history with robust regression detection.

Every benchmark run becomes one line of ``results/bench/history.jsonl``
(schema ``repro.obs.bench/1``, validated like the metrics schema): suite,
benchmark name, wall seconds, optional throughput and peak memory, free
``extra`` numbers, and an environment fingerprint (git sha, python,
platform, hostname) so each data point is attributable to a commit and a
machine.  ``benchmarks/conftest.py`` records into it whenever
``REPRO_BENCH_HISTORY`` is set, and ``python -m repro.tools.bench`` is the
human interface (``record`` / ``ingest`` / ``compare`` / ``report``).

Regression detection is deliberately robust rather than clever:

* the baseline is the *median* of the most recent comparable runs, with
  spread measured by the scaled median absolute deviation (MAD);
* a run is only a *confirmed* regression when it exceeds the threshold
  ratio over the median, AND clears a noise floor of several MADs, AND
  exceeds the threshold over the upper end of a bootstrap confidence
  interval of the baseline median (seeded resampling -- deterministic);
* baselines are environment-matched by default (same hostname/platform),
  so a laptop history never fails a CI runner.

Re-recording an unchanged benchmark is therefore never flagged, while a
genuine >= threshold slowdown is (both directions are asserted in
``tests/obs/test_bench.py``).
"""

from __future__ import annotations

import json
import os
import platform
import random
import socket
import subprocess
import time
from dataclasses import dataclass, field

from repro.obs.events import publish_event
from repro.obs.schema import BENCH_SCHEMA, validate_bench

#: Default on-disk location, relative to the repository root.
DEFAULT_HISTORY_PATH = os.path.join("results", "bench", "history.jsonl")

#: Regression-detector defaults.
DEFAULT_THRESHOLD = 0.10     #: flag runs > (1 + threshold) x baseline median
DEFAULT_WINDOW = 8           #: baseline runs considered (most recent first)
DEFAULT_MIN_RUNS = 2         #: baseline runs required before judging
NOISE_FLOOR_MADS = 3.0       #: excess must clear this many scaled MADs

_SPARKS = "▁▂▃▄▅▆▇█"


def environment_fingerprint(cwd: str | None = None) -> dict:
    """Str->str description of where a measurement was taken."""
    return {
        "git_sha": _git_sha(cwd),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": str(os.cpu_count() or 0),
        "hostname": socket.gethostname(),
    }


def _git_sha(cwd: str | None = None) -> str:
    override = os.environ.get("REPRO_GIT_SHA")
    if override:
        return override
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd or os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


@dataclass
class BenchRecord:
    """One benchmark measurement, ready to append to the history."""

    suite: str
    benchmark: str
    wall_seconds: float
    throughput: float | None = None
    throughput_unit: str | None = None
    peak_memory_bytes: int | None = None
    extra: dict = field(default_factory=dict)
    env: dict = field(default_factory=dict)
    recorded_at: str = ""

    def __post_init__(self) -> None:
        if not self.recorded_at:
            self.recorded_at = time.strftime(
                "%Y-%m-%dT%H:%M:%S%z", time.localtime()
            )
        if not self.env:
            self.env = environment_fingerprint()

    def to_dict(self) -> dict:
        record = {
            "schema": BENCH_SCHEMA,
            "suite": self.suite,
            "benchmark": self.benchmark,
            "wall_seconds": self.wall_seconds,
            "extra": dict(self.extra),
            "env": dict(self.env),
            "recorded_at": self.recorded_at,
        }
        if self.throughput is not None:
            record["throughput"] = self.throughput
            record["throughput_unit"] = self.throughput_unit or "bytes/s"
        if self.peak_memory_bytes is not None:
            record["peak_memory_bytes"] = int(self.peak_memory_bytes)
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "BenchRecord":
        return cls(
            suite=record["suite"],
            benchmark=record["benchmark"],
            wall_seconds=float(record["wall_seconds"]),
            throughput=record.get("throughput"),
            throughput_unit=record.get("throughput_unit"),
            peak_memory_bytes=record.get("peak_memory_bytes"),
            extra=dict(record.get("extra", {})),
            env=dict(record.get("env", {})),
            recorded_at=record.get("recorded_at", ""),
        )

    def key(self) -> tuple[str, str]:
        return (self.suite, self.benchmark)


class BenchHistory:
    """The append-only JSONL store behind ``results/bench/history.jsonl``."""

    def __init__(self, path: str = DEFAULT_HISTORY_PATH):
        self.path = os.fspath(path)

    @classmethod
    def from_env(cls) -> "BenchHistory":
        return cls(os.environ.get("REPRO_BENCH_HISTORY", DEFAULT_HISTORY_PATH))

    def append(self, record: BenchRecord) -> dict:
        """Validate and append one record; returns the written document."""
        document = record.to_dict()
        errors = validate_bench(document)
        if errors:
            raise ValueError(
                f"refusing to append invalid bench record: {errors}"
            )
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(document, sort_keys=True))
            handle.write("\n")
        publish_event("bench", "record", {
            "suite": record.suite,
            "benchmark": record.benchmark,
            "wall_seconds": record.wall_seconds,
            "throughput": record.throughput,
            "throughput_unit": record.throughput_unit,
        })
        return document

    def load(self) -> list[BenchRecord]:
        """Every record in file order; malformed lines raise ValueError."""
        if not os.path.exists(self.path):
            return []
        records = []
        with open(self.path, encoding="utf-8") as handle:
            for number, line in enumerate(handle, 1):
                if not line.strip():
                    continue
                document = json.loads(line)
                errors = validate_bench(document)
                if errors:
                    raise ValueError(
                        f"{self.path}:{number}: {'; '.join(errors)}"
                    )
                records.append(BenchRecord.from_dict(document))
        return records

    def entries(
        self, suite: str | None = None, benchmark: str | None = None
    ) -> list[BenchRecord]:
        return [
            record for record in self.load()
            if (suite is None or record.suite == suite)
            and (benchmark is None or record.benchmark == benchmark)
        ]

    def benchmarks(self) -> list[tuple[str, str]]:
        """Distinct (suite, benchmark) keys, in first-seen order."""
        seen: dict[tuple[str, str], None] = {}
        for record in self.load():
            seen.setdefault(record.key(), None)
        return list(seen)


# -- robust statistics -----------------------------------------------------

def median(values) -> float:
    ordered = sorted(values)
    if not ordered:
        raise ValueError("median of empty sequence")
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values) -> float:
    """Median absolute deviation (unscaled)."""
    center = median(values)
    return median(abs(value - center) for value in values)


def scaled_mad(values) -> float:
    """MAD scaled to estimate a standard deviation (x1.4826)."""
    return 1.4826 * mad(values)


def bootstrap_median_interval(
    values,
    probability: float = 0.95,
    resamples: int = 500,
    seed: int = 0,
) -> tuple[float, float]:
    """Seeded bootstrap confidence interval for the median."""
    values = list(values)
    if not values:
        raise ValueError("bootstrap of empty sequence")
    if len(values) == 1:
        return (values[0], values[0])
    rng = random.Random(seed)
    medians = sorted(
        median(rng.choices(values, k=len(values))) for _ in range(resamples)
    )
    tail = (1.0 - probability) / 2.0
    lo = medians[int(tail * (resamples - 1))]
    hi = medians[int((1.0 - tail) * (resamples - 1))]
    return (lo, hi)


@dataclass
class Verdict:
    """One benchmark's current run judged against its baseline."""

    suite: str
    benchmark: str
    current: float
    baseline_runs: int
    baseline_median: float | None
    baseline_mad: float | None
    threshold: float
    regressed: bool
    improved: bool
    reason: str

    @property
    def ratio(self) -> float | None:
        if not self.baseline_median:
            return None
        return self.current / self.baseline_median

    def summary(self) -> str:
        ratio = self.ratio
        shape = f"{ratio:.2f}x baseline" if ratio is not None else "no baseline"
        status = ("REGRESSION" if self.regressed
                  else "improved" if self.improved else "ok")
        return (f"{self.suite}::{self.benchmark}: {self.current:.3f}s "
                f"({shape}) -- {status}: {self.reason}")


def detect_regression(
    current: float,
    baseline,
    *,
    suite: str = "",
    benchmark: str = "",
    threshold: float = DEFAULT_THRESHOLD,
    min_runs: int = DEFAULT_MIN_RUNS,
    noise_floor_mads: float = NOISE_FLOOR_MADS,
    resamples: int = 500,
) -> Verdict:
    """Judge one measurement against prior runs of the same benchmark.

    A *confirmed* regression must clear three independent bars: the
    threshold ratio over the baseline median, a noise floor of
    ``noise_floor_mads`` scaled MADs over the median, and the threshold
    ratio over the upper bootstrap confidence bound of the median.
    """
    baseline = [float(value) for value in baseline]
    base = dict(suite=suite, benchmark=benchmark, current=current,
                baseline_runs=len(baseline), threshold=threshold)
    if len(baseline) < min_runs:
        center = median(baseline) if baseline else None
        return Verdict(
            **base, baseline_median=center, baseline_mad=None,
            regressed=False, improved=False,
            reason=f"insufficient history ({len(baseline)} < {min_runs} runs)",
        )
    center = median(baseline)
    spread = scaled_mad(baseline)
    improved = center > 0 and current < center / (1.0 + threshold)
    if center <= 0:
        return Verdict(
            **base, baseline_median=center, baseline_mad=spread,
            regressed=False, improved=False,
            reason="degenerate baseline (median <= 0)",
        )
    over_threshold = current > center * (1.0 + threshold)
    over_noise = (current - center) > noise_floor_mads * spread
    _, hi = bootstrap_median_interval(baseline, resamples=resamples)
    over_interval = current > hi * (1.0 + threshold)
    if over_threshold and over_noise and over_interval:
        return Verdict(
            **base, baseline_median=center, baseline_mad=spread,
            regressed=True, improved=False,
            reason=(f"{current / center:.2f}x median over {len(baseline)} "
                    f"runs (> {1 + threshold:.2f}x, clears "
                    f"{noise_floor_mads:.0f} MADs and the bootstrap bound)"),
        )
    if over_threshold:
        blocker = ("noise floor" if not over_noise
                   else "bootstrap confidence bound")
        reason = (f"over threshold but within the {blocker} -- not confirmed")
    elif improved:
        reason = f"{current / center:.2f}x median (faster)"
    else:
        reason = f"{current / center:.2f}x median (within threshold)"
    return Verdict(
        **base, baseline_median=center, baseline_mad=spread,
        regressed=False, improved=improved, reason=reason,
    )


def _same_environment(a: dict, b: dict) -> bool:
    return (a.get("hostname") == b.get("hostname")
            and a.get("platform") == b.get("platform")
            and a.get("backend") == b.get("backend")
            and a.get("timing_engine") == b.get("timing_engine"))


def compare_history(
    history: BenchHistory,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_WINDOW,
    min_runs: int = DEFAULT_MIN_RUNS,
    benchmarks=None,
    match_env: bool = True,
) -> list[Verdict]:
    """Judge the newest run of every benchmark against its predecessors.

    ``match_env`` (the default) restricts each baseline to runs recorded
    on the same hostname/platform as the run under judgment, so histories
    can mix machines without cross-machine false alarms.
    """
    records = history.load()
    grouped: dict[tuple[str, str], list[BenchRecord]] = {}
    for record in records:
        grouped.setdefault(record.key(), []).append(record)
    verdicts = []
    for (suite, benchmark), runs in grouped.items():
        if benchmarks and benchmark not in benchmarks \
                and f"{suite}::{benchmark}" not in benchmarks:
            continue
        current = runs[-1]
        prior = runs[:-1]
        if match_env:
            prior = [run for run in prior
                     if _same_environment(run.env, current.env)]
        baseline = [run.wall_seconds for run in prior[-window:]]
        verdicts.append(detect_regression(
            current.wall_seconds, baseline,
            suite=suite, benchmark=benchmark,
            threshold=threshold, min_runs=min_runs,
        ))
    return verdicts


def sparkline(values) -> str:
    """ASCII-art trend line (one glyph per value, min..max normalized)."""
    values = [float(value) for value in values]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARKS[0] * len(values)
    span = hi - lo
    return "".join(
        _SPARKS[min(int((value - lo) / span * len(_SPARKS)), len(_SPARKS) - 1)]
        for value in values
    )
