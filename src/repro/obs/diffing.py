"""The run-diff engine: explain *where* two runs differ, not just that.

The paper's entire argument is differential -- every figure explains
where the cycles went when a feature, width or cache is toggled.  This
module is that explanation machinery for any pair of recorded runs:

* :func:`diff_stats` -- two :class:`~repro.sim.stats.SimStats` compared
  counter by counter, with the 13-category stall-slot invariant
  re-checked on both sides, per-static-instruction wait-cycle deltas
  ranked by cycle impact, and provenance guards (results stamped with
  different program digests refuse to compare silently).
* :func:`diff_ledger_runs` -- two run ledgers (``repro.obs.events/1``)
  aligned phase by phase: event counts and wall-time deltas matched by
  (source, type), so "the compile phase got 2x slower" falls out of the
  ledger without instrumenting anything new.
* :func:`diff_metrics_docs` -- two metrics snapshots
  (``repro.obs.metrics/1``) joined on (name, labels); wall-clock-like
  metrics are marked *noisy* and never fail an identity verdict.
* :func:`diff_bench_records` -- a bench-history record against its
  baseline, with the noise floor from :mod:`repro.obs.bench` (scaled
  MADs over the baseline window) deciding significance.
* :func:`build_report` -- assembles the sections into a schema-validated
  ``repro.obs.diff/1`` document and publishes a one-line summary to the
  active event bus (the dashboard's diff panel).

``python -m repro.tools.diff`` is the CLI over all of this, and
``repro.tools.bench compare --explain`` drills flagged regressions into
:func:`diff_stats` via cached reruns.  The first-divergence *bisector*
for non-identical traces lives in :mod:`repro.sim.diverge`.  See
``docs/observability.md`` ("Regression forensics").
"""

from __future__ import annotations

from repro.obs.bench import NOISE_FLOOR_MADS, BenchRecord, median, scaled_mad
from repro.obs.events import publish_event
from repro.obs.schema import DIFF_SCHEMA, validate_diff
from repro.sim.stats import STALL_CATEGORIES, WAIT_CATEGORIES, SimStats

#: SimStats event counters compared by :func:`diff_stats`, in display
#: order (``config_name`` is provenance, not a measurement).
STATS_COUNTERS = (
    "instructions", "cycles", "branches", "mispredictions", "loads",
    "stores", "store_forwards", "l1_misses", "l2_misses", "tlb_misses",
    "sbox_accesses", "sbox_cache_misses", "issue_slots",
)

#: Metric-name fragments that mark a metric as wall-clock-derived.
#: Host timing is never deterministic, so these deltas are reported but
#: excluded from the identity verdict.
_NOISY_FRAGMENTS = ("seconds", "wall", "eta", ".bytes_per_sec")


class ProvenanceMismatch(ValueError):
    """Two results whose provenance stamps say they cannot be compared."""


# -- SimStats --------------------------------------------------------------

def _invariant_entry(side: str, stats: SimStats) -> dict:
    """Re-check the exact slot account of one run (machine view).

    ``instructions + sum(stall_slots) == issue_slots`` with every
    category drawn from the 13 documented ones; unlimited-width runs
    (``issue_slots == 0``) have no slot budget and pass vacuously.
    """
    unknown = sorted(set(stats.stall_slots) - set(STALL_CATEGORIES))
    accounted = stats.instructions + sum(stats.stall_slots.values())
    entry = {
        "side": side,
        "issue_slots": stats.issue_slots,
        "accounted_slots": accounted,
        "ok": not unknown and (
            not stats.issue_slots or accounted == stats.issue_slots
        ),
    }
    if unknown:
        entry["unknown_categories"] = ",".join(unknown)
    return entry


def _ranked_deltas(categories, a_map: dict, b_map: dict) -> list[dict]:
    """Per-category delta rows, ranked by absolute impact (ties: order)."""
    rows = [
        {"category": category,
         "a": a_map.get(category, 0),
         "b": b_map.get(category, 0),
         "delta": b_map.get(category, 0) - a_map.get(category, 0)}
        for category in categories
    ]
    order = {category: index for index, category in enumerate(categories)}
    rows.sort(key=lambda row: (-abs(row["delta"]), order[row["category"]]))
    return rows


def _hotspot_deltas(a: SimStats, b: SimStats) -> list[dict]:
    """Per-static wait-cycle deltas over the union of both hot tables."""
    sides: dict[int, dict] = {}
    for key, table in (("a", a.hotspots), ("b", b.hotspots)):
        for row in table:
            spot = sides.setdefault(row["static_index"], {
                "static_index": row["static_index"],
                "text": row["text"],
                "a": 0, "b": 0,
                "a_waits": {}, "b_waits": {},
            })
            spot[key] = row["total_wait_cycles"]
            spot[f"{key}_waits"] = row["wait_cycles"]
    rows = []
    for spot in sides.values():
        categories = {
            category: (spot["b_waits"].get(category, 0)
                       - spot["a_waits"].get(category, 0))
            for category in WAIT_CATEGORIES
            if spot["b_waits"].get(category, 0)
            != spot["a_waits"].get(category, 0)
        }
        rows.append({
            "static_index": spot["static_index"],
            "text": spot["text"],
            "a": spot["a"],
            "b": spot["b"],
            "delta": spot["b"] - spot["a"],
            "categories": categories,
        })
    rows.sort(key=lambda row: (-abs(row["delta"]), row["static_index"]))
    return rows


def check_provenance(a: SimStats, b: SimStats) -> str | None:
    """Refuse to compare hot tables from different programs.

    Returns the shared program digest (or ``None`` when neither side is
    stamped -- results predating the provenance stamps still diff, with
    the digest reported as unknown).
    """
    digest_a = a.extra.get("program_digest")
    digest_b = b.extra.get("program_digest")
    if digest_a and digest_b and digest_a != digest_b:
        raise ProvenanceMismatch(
            f"refusing to diff results from different programs: "
            f"{digest_a[:12]} vs {digest_b[:12]} (pass results of the "
            f"same cipher kernel, or diff counters only)"
        )
    return digest_a or digest_b


def diff_stats(a: SimStats, b: SimStats) -> dict:
    """The ``stats`` section of a diff report: cycle-provenance deltas.

    Raises :class:`ProvenanceMismatch` when both sides carry a program
    digest and they disagree -- a hot-spot table only means something
    against its own program's static instructions.
    """
    digest = check_provenance(a, b)
    section = {
        "a_config": a.config_name,
        "b_config": b.config_name,
        "program_digest": digest or "unknown",
        "a_engine": a.extra.get("timing_engine", "unknown"),
        "b_engine": b.extra.get("timing_engine", "unknown"),
        "counters": [
            {"name": name,
             "a": getattr(a, name),
             "b": getattr(b, name),
             "delta": getattr(b, name) - getattr(a, name)}
            for name in STATS_COUNTERS
        ],
        "invariant": [_invariant_entry("a", a), _invariant_entry("b", b)],
        "stall_slots": _ranked_deltas(STALL_CATEGORIES,
                                      a.stall_slots, b.stall_slots),
        "wait_cycles": _ranked_deltas(WAIT_CATEGORIES,
                                      a.wait_cycles, b.wait_cycles),
        "hotspots": _hotspot_deltas(a, b),
        "hotspots_complete": not (a.extra.get("hotspots_truncated")
                                  or b.extra.get("hotspots_truncated")),
    }
    return section


def stats_identical(section: dict) -> bool:
    """True when every counter, slot and hot-spot delta is exactly zero."""
    return not any(
        row["delta"]
        for key in ("counters", "stall_slots", "wait_cycles", "hotspots")
        for row in section[key]
    )


def stats_verdict(section: dict, a_label: str, b_label: str) -> str:
    """One explanatory line: who gained what, and where it landed."""
    if not all(entry["ok"] for entry in section["invariant"]):
        broken = [entry["side"] for entry in section["invariant"]
                  if not entry["ok"]]
        return (f"invariant violation on side {'/'.join(broken)}: "
                f"issue slots do not account -- results are corrupt")
    if stats_identical(section):
        return (f"identical: {b_label} matches {a_label} on every counter, "
                f"stall category and hot spot")
    top = next((row for row in section["stall_slots"] if row["delta"]), None)
    if top is None:
        top = next((row for row in section["counters"] if row["delta"]),
                   None)
        return (f"{b_label} differs from {a_label}: "
                f"{top['name']} {top['delta']:+,}")
    direction = "gained" if top["delta"] > 0 else "saved"
    line = (f"{b_label} {direction} {abs(top['delta']):,} "
            f"{top['category']} stall slots vs {a_label}")
    spot = next((row for row in section["hotspots"] if row["delta"]), None)
    if spot is not None:
        line += (f"; hottest at #{spot['static_index']} {spot['text']} "
                 f"({spot['delta']:+,} wait cycles)")
    return line


def explain_stats_delta(a: SimStats, b: SimStats,
                        a_label: str = "a", b_label: str = "b") -> str:
    """Assertion-message helper: the verdict line for two SimStats.

    Used by the engine/backend equivalence suites so a bit-identity
    failure names the category and static instruction that moved instead
    of dumping two SimStats reprs.  Never raises: cross-program pairs
    degrade to a provenance message.
    """
    try:
        section = diff_stats(a, b)
    except ProvenanceMismatch as error:
        return str(error)
    return stats_verdict(section, a_label, b_label)


# -- run ledgers -----------------------------------------------------------

_SECONDS_KEYS = ("seconds", "wall_time", "wall_seconds")


def _phase_seconds(data: dict) -> float:
    for key in _SECONDS_KEYS:
        value = data.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
    return 0.0


def _phase_totals(events) -> tuple[dict, float]:
    totals: dict[tuple[str, str], list] = {}
    duration = 0.0
    for event in events:
        key = (event.get("source", "?"), event.get("type", "?"))
        entry = totals.setdefault(key, [0, 0.0])
        entry[0] += 1
        entry[1] += _phase_seconds(event.get("data") or {})
        ts = event.get("ts")
        if isinstance(ts, (int, float)) and ts > duration:
            duration = float(ts)
    return totals, duration


def diff_ledger_runs(events_a, events_b) -> dict:
    """Phase alignment of two run ledgers, matched by (source, type).

    Counts are the structural signal (two runs of the same work publish
    the same events in the same multiplicities); wall-time deltas carry
    the forensics (which phase slowed down).  Diffing a run against
    itself is always all-zero.
    """
    totals_a, duration_a = _phase_totals(events_a)
    totals_b, duration_b = _phase_totals(events_b)
    rows = []
    for source, type_ in sorted(set(totals_a) | set(totals_b)):
        count_a, seconds_a = totals_a.get((source, type_), (0, 0.0))
        count_b, seconds_b = totals_b.get((source, type_), (0, 0.0))
        rows.append({
            "source": source,
            "type": type_,
            "a_count": count_a,
            "b_count": count_b,
            "delta_count": count_b - count_a,
            "a_seconds": round(seconds_a, 6),
            "b_seconds": round(seconds_b, 6),
            "delta_seconds": round(seconds_b - seconds_a, 6),
        })
    return {
        "rows": rows,
        "a_duration": round(duration_a, 6),
        "b_duration": round(duration_b, 6),
    }


def ledger_identical(section: dict) -> bool:
    """Structural identity: every (source, type) count matches.

    Wall times are host noise, so they never break identity -- two runs
    of identical work on a loaded machine still align.
    """
    return all(row["delta_count"] == 0 for row in section["rows"])


def ledger_verdict(section: dict, a_label: str, b_label: str) -> str:
    rows = section["rows"]
    if not rows:
        return f"identical: both ledgers are empty"
    if ledger_identical(section):
        slowest = max(rows, key=lambda row: abs(row["delta_seconds"]))
        note = ""
        if slowest["delta_seconds"]:
            note = (f"; largest wall-time delta "
                    f"{slowest['delta_seconds']:+.3f}s in "
                    f"{slowest['source']}/{slowest['type']}")
        return (f"identical: {len(rows)} event kind(s) align between "
                f"{a_label} and {b_label}{note}")
    top = max(rows, key=lambda row: abs(row["delta_count"]))
    direction = "more" if top["delta_count"] > 0 else "fewer"
    return (f"{b_label} published {abs(top['delta_count'])} {direction} "
            f"{top['source']}/{top['type']} event(s) than {a_label}")


# -- metrics snapshots -----------------------------------------------------

def _is_noisy(name: str) -> bool:
    return any(fragment in name for fragment in _NOISY_FRAGMENTS)


def _metric_values(document) -> dict[str, float]:
    values: dict[str, float] = {}
    for metric in (document or {}).get("metrics", []):
        labels = metric.get("labels") or {}
        name = metric.get("name", "?")
        if labels:
            inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            name = f"{name}{{{inner}}}"
        if metric.get("type") == "histogram":
            values[f"{name}.count"] = float(metric.get("count", 0))
            values[f"{name}.sum"] = float(metric.get("sum", 0.0))
        else:
            value = metric.get("value")
            if isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                values[name] = float(value)
    return values


def diff_metrics_docs(a_doc, b_doc, noise_floors: dict | None = None) -> list:
    """Joined counter/gauge/histogram deltas of two metrics snapshots.

    ``noise_floors`` (metric name -> absolute floor, typically derived
    from bench history MADs) marks a row insignificant when its delta
    sits under the floor; wall-clock metrics are flagged ``noisy``
    unconditionally.
    """
    values_a = _metric_values(a_doc)
    values_b = _metric_values(b_doc)
    rows = []
    for name in sorted(set(values_a) | set(values_b)):
        a_value = values_a.get(name)
        b_value = values_b.get(name)
        delta = (b_value or 0.0) - (a_value or 0.0)
        row = {
            "name": name,
            "a": a_value,
            "b": b_value,
            "delta": delta,
            "noisy": _is_noisy(name),
        }
        floor = (noise_floors or {}).get(name)
        if floor is not None:
            row["noise_floor"] = floor
            row["noisy"] = row["noisy"] or abs(delta) <= floor
        rows.append(row)
    rows.sort(key=lambda row: (-abs(row["delta"]), row["name"]))
    return rows


def metrics_identical(rows) -> bool:
    """Identity over the deterministic rows only (noisy ones excluded)."""
    return all(row["delta"] == 0 for row in rows if not row["noisy"])


def metrics_verdict(rows, a_label: str, b_label: str) -> str:
    if metrics_identical(rows):
        noisy = sum(1 for row in rows if row["noisy"] and row["delta"])
        note = f" ({noisy} wall-clock metric(s) within noise)" if noisy else ""
        return (f"identical: every deterministic metric matches between "
                f"{a_label} and {b_label}{note}")
    top = next(row for row in rows if not row["noisy"] and row["delta"])
    return (f"{b_label} differs from {a_label}: "
            f"{top['name']} {top['delta']:+g}")


# -- bench history ---------------------------------------------------------

def diff_bench_records(current: BenchRecord, baseline: list) -> dict:
    """One bench record against its baseline window, with a noise floor.

    The floor is the detector's own bar (``NOISE_FLOOR_MADS`` scaled MADs
    over the baseline walls), so a diff report and ``bench compare``
    never disagree about what counts as noise.
    """
    walls = [record.wall_seconds for record in baseline]
    center = median(walls) if walls else None
    floor = (NOISE_FLOOR_MADS * scaled_mad(walls)) if len(walls) >= 2 else 0.0
    delta = current.wall_seconds - center if center is not None else 0.0
    section = {
        "suite": current.suite,
        "benchmark": current.benchmark,
        "current_wall_seconds": current.wall_seconds,
        "baseline_runs": len(walls),
        "baseline_median_seconds": center,
        "delta_seconds": round(delta, 6),
        "noise_floor_seconds": round(floor, 6),
        "significant": bool(walls) and abs(delta) > floor,
    }
    if baseline:
        for key in sorted(set(current.env) | set(baseline[-1].env)):
            ours, theirs = current.env.get(key), baseline[-1].env.get(key)
            if ours != theirs:
                section[f"env.{key}"] = f"{theirs} -> {ours}"
    return section


def bench_verdict(section: dict) -> str:
    name = f"{section['suite']}::{section['benchmark']}"
    if not section["baseline_runs"]:
        return f"{name}: no baseline runs to compare against"
    if not section["significant"]:
        return (f"{name}: {section['delta_seconds']:+.3f}s vs baseline "
                f"median -- within the "
                f"{section['noise_floor_seconds']:.3f}s noise floor")
    direction = "slowed" if section["delta_seconds"] > 0 else "sped up"
    return (f"{name} {direction} {abs(section['delta_seconds']):.3f}s over "
            f"the baseline median "
            f"{section['baseline_median_seconds']:.3f}s "
            f"(noise floor {section['noise_floor_seconds']:.3f}s, "
            f"{section['baseline_runs']} runs)")


# -- report assembly -------------------------------------------------------

def build_report(
    kind: str,
    a: dict,
    b: dict,
    *,
    identical: bool,
    verdict: str,
    generated_by: str = "repro.obs.diffing",
    stats: dict | None = None,
    phases: dict | None = None,
    metrics: list | None = None,
    bench: dict | None = None,
) -> dict:
    """Assemble, validate and announce one ``repro.obs.diff/1`` report.

    ``a``/``b`` are str->scalar provenance blocks (labels, run ids, env
    fingerprints, cache state -- whatever identifies each side).  The
    report is validated before it is returned, so a malformed section is
    a bug here, not a surprise for ``obs --check``; a one-line summary is
    published to the active event bus for the dashboard's diff panel.
    """
    report: dict = {
        "schema": DIFF_SCHEMA,
        "generated_by": generated_by,
        "kind": kind,
        "identical": identical,
        "verdict": verdict,
        "a": a,
        "b": b,
    }
    if stats is not None:
        report["stats"] = {key: value for key, value in stats.items()
                          if key != "rows"}
    if phases is not None:
        report["phases"] = phases["rows"]
        report["a"] = {**report["a"],
                       "ledger_duration": phases["a_duration"]}
        report["b"] = {**report["b"],
                       "ledger_duration": phases["b_duration"]}
    if metrics is not None:
        report["metrics"] = metrics
    if bench is not None:
        report["bench"] = bench
    errors = validate_diff(report)
    if errors:
        raise ValueError(f"malformed diff report: {errors}")
    publish_event("diff", "report", {
        "kind": kind,
        "identical": identical,
        "verdict": verdict,
        "a": a.get("label"),
        "b": b.get("label"),
    })
    return report


# -- terminal rendering ----------------------------------------------------

def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.3f}"
    return f"{int(value):,}"


def render_report(report: dict, limit: int = 10) -> str:
    """Human-readable table rendering of a diff report."""
    lines = [
        f"diff [{report['kind']}]  "
        f"a={report['a'].get('label', '?')}  b={report['b'].get('label', '?')}",
        f"verdict: {report['verdict']}",
    ]
    stats = report.get("stats")
    if stats:
        shown = False
        for row in stats["counters"]:
            if not row["delta"]:
                continue
            if not shown:
                lines.append("")
                lines.append(f"  {'counter':<20} {'a':>14} {'b':>14} "
                             f"{'delta':>12}")
                shown = True
            lines.append(f"  {row['name']:<20} {_fmt(row['a']):>14} "
                         f"{_fmt(row['b']):>14} {row['delta']:>+12,}")
        shown = False
        for row in stats["stall_slots"][:limit]:
            if not row["delta"]:
                continue
            if not shown:
                lines.append(f"  {'stall slots':<20} {'a':>14} {'b':>14} "
                             f"{'delta':>12}")
                shown = True
            lines.append(f"  {row['category']:<20} {_fmt(row['a']):>14} "
                         f"{_fmt(row['b']):>14} {row['delta']:>+12,}")
        spots = [row for row in stats["hotspots"] if row["delta"]][:limit]
        if spots:
            lines.append("  hot-spot deltas (wait cycles):")
            for row in spots:
                reasons = ", ".join(
                    f"{category} {delta:+,}" for category, delta
                    in sorted(row["categories"].items(),
                              key=lambda item: -abs(item[1]))
                )
                lines.append(f"    #{row['static_index']:<4} "
                             f"{row['text']:<36} {row['delta']:>+12,}  "
                             f"{reasons}")
        if not stats.get("hotspots_complete", True):
            lines.append("  (hot-spot table truncated: per-instruction "
                         "deltas cover the top entries only)")
    phases = report.get("phases")
    if phases:
        lines.append("")
        lines.append(f"  {'phase':<28} {'a#':>6} {'b#':>6} "
                     f"{'a sec':>10} {'b sec':>10} {'delta':>10}")
        for row in phases:
            if not row["delta_count"] and not row["delta_seconds"]:
                continue
            name = f"{row['source']}/{row['type']}"
            lines.append(f"  {name:<28} {row['a_count']:>6} "
                         f"{row['b_count']:>6} {row['a_seconds']:>10.3f} "
                         f"{row['b_seconds']:>10.3f} "
                         f"{row['delta_seconds']:>+10.3f}")
    metrics = report.get("metrics")
    if metrics:
        lines.append("")
        lines.append(f"  {'metric':<44} {'delta':>14}")
        for row in metrics[:limit]:
            if not row["delta"]:
                continue
            flag = " (noisy)" if row.get("noisy") else ""
            lines.append(f"  {row['name']:<44} {row['delta']:>+14g}{flag}")
    bench = report.get("bench")
    if bench:
        lines.append("")
        for key, value in bench.items():
            lines.append(f"  {key}: {value}")
    return "\n".join(lines)
