"""Observability layer: metrics, structured traces, and stall accounting.

The paper's evaluation rests on *explaining* cycle counts, not just
reporting them -- its SimpleView pipeline visualizations attribute each
cipher's time to operand waits, fetch limits and cache behavior.  This
package is that explanation machinery as reusable infrastructure:

* :mod:`repro.obs.metrics` -- a lightweight labeled-metrics registry
  (:class:`Counter` / :class:`Gauge` / :class:`Histogram`) with a stable
  JSON snapshot schema, used by the timing simulator and the experiment
  runner.
* :mod:`repro.obs.tracing` -- a span/event tracer with a JSONL sink and
  Chrome/Perfetto trace-event export (open the ``.json`` file at
  https://ui.perfetto.dev).
* :mod:`repro.obs.pipeline` -- the pipeline-schedule event stream shared
  by the ASCII viewer (:mod:`repro.sim.pipeview`) and the Perfetto
  exporter.
* :mod:`repro.obs.profiler` -- a pure-stdlib sampling profiler that
  attributes *host* wall time to repro subsystems and exports
  collapsed-stack flamegraph text (``--profile`` on the CLI tools).
* :mod:`repro.obs.events` -- the unified run ledger: one
  :class:`EventBus` (schema ``repro.obs.events/1``, per-invocation
  ``run_id`` + monotonic ``seq``) that runner telemetry, the cache, the
  compiled backend, the bench recorder and the profiler publish into,
  with pluggable sinks (JSONL ledger, ring buffer, metrics fold-in);
  rendered live or replayed by ``repro.tools.dash``.
* :mod:`repro.obs.bench` -- the append-only benchmark history
  (``results/bench/history.jsonl``, schema ``repro.obs.bench/1``) with
  robust regression detection; driven by ``repro.tools.bench``.
* :mod:`repro.obs.diffing` -- the run-diff engine (schema
  ``repro.obs.diff/1``): SimStats cycle-provenance deltas, ledger phase
  alignment, metrics/bench deltas with noise floors, and the verdict
  line; driven by ``repro.tools.diff`` and ``repro.tools.bench compare
  --explain``.  The first-divergence trace bisector is its sibling,
  :mod:`repro.sim.diverge`.
* :mod:`repro.obs.schema` -- validators for the exported documents (used
  by tests, CI, and ``repro.tools.obs --check``).
* :mod:`repro.obs.session` -- the :class:`Observability` bundle the CLI
  tools build from ``--metrics-out`` / ``--trace-out`` / ``--profile``.

Stall-attribution itself lives in :mod:`repro.sim.timing`, which classifies
every issue slot of every cycle; see ``docs/observability.md`` for the
category definitions and their mapping to the paper's terminology.
"""

from __future__ import annotations

from repro.obs.bench import (
    BenchHistory,
    BenchRecord,
    compare_history,
    detect_regression,
    environment_fingerprint,
)
from repro.obs.diffing import (
    ProvenanceMismatch,
    build_report,
    diff_bench_records,
    diff_ledger_runs,
    diff_metrics_docs,
    diff_stats,
    explain_stats_delta,
    render_report,
)
from repro.obs.events import (
    EventBus,
    JsonlSink,
    MetricsSink,
    RingBufferSink,
    active_bus,
    load_ledger,
    new_run_id,
    publish_event,
    set_active_bus,
    split_runs,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.pipeline import schedule_spans, schedule_trace_events
from repro.obs.profiler import SamplingProfiler
from repro.obs.schema import (
    ANALYSIS_SCHEMA,
    BENCH_SCHEMA,
    DIFF_SCHEMA,
    EVENTS_SCHEMA,
    LINT_SCHEMA,
    METRICS_SCHEMA,
    validate_analysis,
    validate_bench,
    validate_bench_history,
    validate_diff,
    validate_event,
    validate_event_ledger,
    validate_lint,
    validate_metrics,
    validate_trace_events,
)
from repro.obs.session import Observability
from repro.obs.tracing import Tracer

__all__ = [
    "ANALYSIS_SCHEMA",
    "BENCH_SCHEMA",
    "BenchHistory",
    "BenchRecord",
    "Counter",
    "DIFF_SCHEMA",
    "EVENTS_SCHEMA",
    "EventBus",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "LINT_SCHEMA",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "MetricsSink",
    "Observability",
    "ProvenanceMismatch",
    "RingBufferSink",
    "SamplingProfiler",
    "Tracer",
    "active_bus",
    "build_report",
    "compare_history",
    "detect_regression",
    "diff_bench_records",
    "diff_ledger_runs",
    "diff_metrics_docs",
    "diff_stats",
    "environment_fingerprint",
    "explain_stats_delta",
    "load_ledger",
    "new_run_id",
    "publish_event",
    "render_report",
    "schedule_spans",
    "schedule_trace_events",
    "set_active_bus",
    "split_runs",
    "validate_analysis",
    "validate_bench",
    "validate_bench_history",
    "validate_diff",
    "validate_event",
    "validate_event_ledger",
    "validate_lint",
    "validate_metrics",
    "validate_trace_events",
]
