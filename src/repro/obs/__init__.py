"""Observability layer: metrics, structured traces, and stall accounting.

The paper's evaluation rests on *explaining* cycle counts, not just
reporting them -- its SimpleView pipeline visualizations attribute each
cipher's time to operand waits, fetch limits and cache behavior.  This
package is that explanation machinery as reusable infrastructure:

* :mod:`repro.obs.metrics` -- a lightweight labeled-metrics registry
  (:class:`Counter` / :class:`Gauge` / :class:`Histogram`) with a stable
  JSON snapshot schema, used by the timing simulator and the experiment
  runner.
* :mod:`repro.obs.tracing` -- a span/event tracer with a JSONL sink and
  Chrome/Perfetto trace-event export (open the ``.json`` file at
  https://ui.perfetto.dev).
* :mod:`repro.obs.pipeline` -- the pipeline-schedule event stream shared
  by the ASCII viewer (:mod:`repro.sim.pipeview`) and the Perfetto
  exporter.
* :mod:`repro.obs.profiler` -- a pure-stdlib sampling profiler that
  attributes *host* wall time to repro subsystems and exports
  collapsed-stack flamegraph text (``--profile`` on the CLI tools).
* :mod:`repro.obs.bench` -- the append-only benchmark history
  (``results/bench/history.jsonl``, schema ``repro.obs.bench/1``) with
  robust regression detection; driven by ``repro.tools.bench``.
* :mod:`repro.obs.schema` -- validators for the exported documents (used
  by tests, CI, and ``repro.tools.obs --check``).
* :mod:`repro.obs.session` -- the :class:`Observability` bundle the CLI
  tools build from ``--metrics-out`` / ``--trace-out`` / ``--profile``.

Stall-attribution itself lives in :mod:`repro.sim.timing`, which classifies
every issue slot of every cycle; see ``docs/observability.md`` for the
category definitions and their mapping to the paper's terminology.
"""

from __future__ import annotations

from repro.obs.bench import (
    BenchHistory,
    BenchRecord,
    compare_history,
    detect_regression,
    environment_fingerprint,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.pipeline import schedule_spans, schedule_trace_events
from repro.obs.profiler import SamplingProfiler
from repro.obs.schema import (
    BENCH_SCHEMA,
    LINT_SCHEMA,
    METRICS_SCHEMA,
    validate_bench,
    validate_bench_history,
    validate_lint,
    validate_metrics,
    validate_trace_events,
)
from repro.obs.session import Observability
from repro.obs.tracing import Tracer

__all__ = [
    "BENCH_SCHEMA",
    "BenchHistory",
    "BenchRecord",
    "Counter",
    "Gauge",
    "Histogram",
    "LINT_SCHEMA",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "Observability",
    "SamplingProfiler",
    "Tracer",
    "compare_history",
    "detect_regression",
    "environment_fingerprint",
    "schedule_spans",
    "schedule_trace_events",
    "validate_bench",
    "validate_bench_history",
    "validate_lint",
    "validate_metrics",
    "validate_trace_events",
]
