"""Figure 2: SSL web-server time breakdown versus session length.

The paper's Figure 2 reproduces Intel measurements of a loaded SSL web
server: the fraction of run time in public-key cipher code, private-key
cipher code, and everything else, as session length grows.  We do not have
Intel's workload, so per DESIGN.md substitution #5 this is an analytical
session-cost model

    total(n) = pub + n * priv_per_byte + n * other_per_byte + other_per_session

with parameters anchored to the paper's own statements: private-key share
reaches ~48% at 32 KB sessions, public-key work dominates very short
sessions, and strong public-key operations cost ~1000x a private-key block
(section 1).  ``from_measured_rate`` ties ``priv_per_byte`` to this
repository's own simulated cipher throughput so the figure tracks the rest
of the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.rows import Row


@dataclass(frozen=True)
class SSLModelParams:
    """Cost model in cycles.  Defaults fit the paper's anchor points."""

    #: One RSA-1024 private-key operation (server side of the handshake).
    public_key_cycles: float = 2.0e6
    #: Symmetric encryption cost (3DES on the paper's baseline: ~90 cyc/B).
    private_per_byte: float = 90.0
    #: Web server + TCP/IP + OS cost per transferred byte.
    other_per_byte: float = 36.6
    #: Connection handling cost independent of payload and crypto.
    other_per_session: float = 50_000.0


@dataclass
class SSLBreakdown(Row):
    session_bytes: int
    public_fraction: float
    private_fraction: float
    other_fraction: float


DEFAULT_LENGTHS = (64, 256, 1024, 4096, 16384, 21 * 1024, 32768, 131072, 1 << 20)


def breakdown(
    session_bytes: int, params: SSLModelParams = SSLModelParams()
) -> SSLBreakdown:
    public = params.public_key_cycles
    private = session_bytes * params.private_per_byte
    other = session_bytes * params.other_per_byte + params.other_per_session
    total = public + private + other
    return SSLBreakdown(
        session_bytes=session_bytes,
        public_fraction=public / total,
        private_fraction=private / total,
        other_fraction=other / total,
    )


def run(
    options=None,
    *,
    lengths: tuple[int, ...] = DEFAULT_LENGTHS,
    params: SSLModelParams = SSLModelParams(),
) -> list[SSLBreakdown]:
    """Uniform entry point; the model is analytic, so ``options`` (accepted
    for signature parity with the simulation-backed modules) is unused."""
    del options
    return [breakdown(n, params) for n in lengths]


def figure2(
    lengths: tuple[int, ...] = DEFAULT_LENGTHS,
    params: SSLModelParams = SSLModelParams(),
) -> list[SSLBreakdown]:
    return run(lengths=lengths, params=params)


def from_measured_rate(
    bytes_per_kilocycle: float,
    base: SSLModelParams = SSLModelParams(),
) -> SSLModelParams:
    """Derive parameters whose private-key cost comes from a simulated rate."""
    return SSLModelParams(
        public_key_cycles=base.public_key_cycles,
        private_per_byte=1000.0 / bytes_per_kilocycle,
        other_per_byte=base.other_per_byte,
        other_per_session=base.other_per_session,
    )


def render_figure2(rows: list[SSLBreakdown]) -> str:
    lines = [
        "Figure 2: SSL Characterization by Session Length (fraction of time)",
        f"{'Session':>10} {'PublicKey':>10} {'PrivateKey':>11} {'Other':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row.session_bytes:>10} {row.public_fraction:>10.2%} "
            f"{row.private_fraction:>11.2%} {row.other_fraction:>8.2%}"
        )
    return "\n".join(lines)
