"""Section 4.3's value-prediction study.

The paper instrumented an infinite last-value predictor on every instruction
in each cipher kernel and found the most predictable dependence edge was
right only 6.3% of the time -- diffusion destroys value locality, so value
speculation cannot break the cipher recurrences.

We replay that experiment: record every destination value during functional
execution, compute per-static-instruction last-value hit rates, and report
the maximum over the *diffusion* operations (logic/rotate/multiply/
substitution/permute results).  Loop-overhead arithmetic (pointer
increments, counters) and loop-invariant key loads are reported separately:
they are trivially predictable or trivially unpredictable in ways that say
nothing about the cipher itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa import Features
from repro.isa import opcodes as op
from repro.kernels import KERNEL_NAMES, make_kernel

DIFFUSION_CATEGORIES = frozenset(
    {op.LOGIC, op.ROTATE, op.MULTIPLY, op.SUBST, op.PERMUTE}
)

DEFAULT_SESSION_BYTES = 512


@dataclass
class ValuePredictionRow:
    cipher: str
    #: Highest per-instruction last-value hit rate among diffusion ops.
    best_diffusion_hit_rate: float
    #: Mean hit rate over all diffusion ops.
    mean_diffusion_hit_rate: float
    #: Highest hit rate over *all* instructions (loop overhead included).
    best_overall_hit_rate: float


def measure_cipher(
    name: str,
    session_bytes: int = DEFAULT_SESSION_BYTES,
    features: Features = Features.ROT,
) -> ValuePredictionRow:
    kernel = make_kernel(name, features)
    plaintext = bytes((i * 131 + 7) & 0xFF for i in range(session_bytes))
    run = kernel.encrypt(plaintext, record_values=True)
    trace = run.trace
    last_value: dict[int, int] = {}
    hits: dict[int, int] = {}
    totals: dict[int, int] = {}
    constant: dict[int, bool] = {}
    dest = trace.static.dest
    for position, static_index in enumerate(trace.seq):
        if dest[static_index] < 0:
            continue
        value = trace.values[position]
        if static_index in last_value:
            totals[static_index] = totals.get(static_index, 0) + 1
            if last_value[static_index] == value:
                hits[static_index] = hits.get(static_index, 0) + 1
            else:
                constant[static_index] = False
        else:
            constant[static_index] = True
        last_value[static_index] = value

    categories = trace.static.category
    diffusion_rates = []
    all_rates = []
    for static_index, total in totals.items():
        if total < 8:
            continue  # too few samples to call it an edge
        rate = hits.get(static_index, 0) / total
        all_rates.append(rate)
        if constant.get(static_index, True) and rate == 1.0:
            # Loop-invariant value (key masking, materialized constants):
            # trivially predictable and not a dependence edge of the cipher.
            continue
        if trace.static.is_flag[static_index]:
            # Single-bit compare flags (e.g. the software multiply's borrow
            # correction) are branch-predictor material; predicting them
            # cannot break a diffusion recurrence.
            continue
        if categories[static_index] in DIFFUSION_CATEGORIES:
            diffusion_rates.append(rate)
    return ValuePredictionRow(
        cipher=name,
        best_diffusion_hit_rate=max(diffusion_rates, default=0.0),
        mean_diffusion_hit_rate=(
            sum(diffusion_rates) / len(diffusion_rates)
            if diffusion_rates else 0.0
        ),
        best_overall_hit_rate=max(all_rates, default=0.0),
    )


def study(
    session_bytes: int = DEFAULT_SESSION_BYTES,
    ciphers: tuple[str, ...] = KERNEL_NAMES,
) -> list[ValuePredictionRow]:
    return [measure_cipher(name, session_bytes) for name in ciphers]


def render(rows: list[ValuePredictionRow]) -> str:
    lines = [
        "Value prediction study (sec 4.3): last-value predictor hit rates",
        f"{'Cipher':<10} {'best-diffusion':>15} {'mean-diffusion':>15} "
        f"{'best-overall':>13}",
    ]
    for row in rows:
        lines.append(
            f"{row.cipher:<10} {row.best_diffusion_hit_rate:>14.1%} "
            f"{row.mean_diffusion_hit_rate:>15.1%} "
            f"{row.best_overall_hit_rate:>13.1%}"
        )
    best = max(row.best_diffusion_hit_rate for row in rows)
    lines.append(
        f"most predictable diffusion edge across the suite: {best:.1%} "
        f"(paper: 6.3%)"
    )
    return "\n".join(lines)
