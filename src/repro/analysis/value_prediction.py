"""Section 4.3's value-prediction study.

The paper instrumented an infinite last-value predictor on every instruction
in each cipher kernel and found the most predictable dependence edge was
right only 6.3% of the time -- diffusion destroys value locality, so value
speculation cannot break the cipher recurrences.

We replay that experiment: record every destination value during functional
execution, compute per-static-instruction last-value hit rates, and report
the maximum over the *diffusion* operations (logic/rotate/multiply/
substitution/permute results).  Loop-overhead arithmetic (pointer
increments, counters) and loop-invariant key loads are reported separately:
they are trivially predictable or trivially unpredictable in ways that say
nothing about the cipher itself.

The three headline rates are derived values cached by the runner against
the kernel program's content hash, so a warm re-run skips the (expensive)
value-recording functional simulation entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.rows import Row, coerce_options
from repro.isa import Features
from repro.isa import opcodes as op
from repro.kernels import KERNEL_NAMES
from repro.runner import ExperimentOptions, Runner, default_runner

DIFFUSION_CATEGORIES = frozenset(
    {op.LOGIC, op.ROTATE, op.MULTIPLY, op.SUBST, op.PERMUTE}
)

DEFAULT_SESSION_BYTES = 512


def _study_plaintext(session_bytes: int) -> bytes:
    """The study's sample payload (deliberately not the runner default)."""
    return bytes((i * 131 + 7) & 0xFF for i in range(session_bytes))


@dataclass
class ValuePredictionRow(Row):
    cipher: str
    #: Highest per-instruction last-value hit rate among diffusion ops.
    best_diffusion_hit_rate: float
    #: Mean hit rate over all diffusion ops.
    mean_diffusion_hit_rate: float
    #: Highest hit rate over *all* instructions (loop overhead included).
    best_overall_hit_rate: float


def default_options(
    session_bytes: int = DEFAULT_SESSION_BYTES,
    ciphers: tuple[str, ...] = KERNEL_NAMES,
) -> list[ExperimentOptions]:
    return [
        ExperimentOptions(
            cipher=name,
            features=Features.ROT,
            session_bytes=session_bytes,
            plaintext=_study_plaintext(session_bytes),
            record_values=True,
        )
        for name in ciphers
    ]


def run(
    options=None,
    *,
    runner: Runner | None = None,
) -> list[ValuePredictionRow]:
    runner = runner or default_runner()
    option_list = coerce_options(options, default_options)
    rows = []
    for opt in option_list:
        if not opt.record_values:
            opt = opt.with_(record_values=True)
        record = runner.cached_value(
            ["value-prediction", runner.fingerprint(opt)],
            lambda opt=opt: _hit_rates(runner, opt),
        )
        rows.append(ValuePredictionRow(cipher=opt.cipher, **record))
    return rows


def measure(
    *,
    cipher: str,
    session_bytes: int = DEFAULT_SESSION_BYTES,
    features: Features = Features.ROT,
    runner: Runner | None = None,
) -> ValuePredictionRow:
    return run(
        ExperimentOptions(
            cipher=cipher,
            features=features,
            session_bytes=session_bytes,
            plaintext=_study_plaintext(session_bytes),
            record_values=True,
        ),
        runner=runner,
    )[0]


def study(
    session_bytes: int = DEFAULT_SESSION_BYTES,
    ciphers: tuple[str, ...] = KERNEL_NAMES,
    *,
    runner: Runner | None = None,
) -> list[ValuePredictionRow]:
    return run(default_options(session_bytes, ciphers), runner=runner)



def _hit_rates(runner: Runner, options: ExperimentOptions) -> dict:
    kernel_run = runner.functional(options)
    trace = kernel_run.trace
    last_value: dict[int, int] = {}
    hits: dict[int, int] = {}
    totals: dict[int, int] = {}
    constant: dict[int, bool] = {}
    dest = trace.static.dest
    for position, static_index in enumerate(trace.seq):
        if dest[static_index] < 0:
            continue
        value = trace.values[position]
        if static_index in last_value:
            totals[static_index] = totals.get(static_index, 0) + 1
            if last_value[static_index] == value:
                hits[static_index] = hits.get(static_index, 0) + 1
            else:
                constant[static_index] = False
        else:
            constant[static_index] = True
        last_value[static_index] = value

    categories = trace.static.category
    diffusion_rates = []
    all_rates = []
    for static_index, total in totals.items():
        if total < 8:
            continue  # too few samples to call it an edge
        rate = hits.get(static_index, 0) / total
        all_rates.append(rate)
        if constant.get(static_index, True) and rate == 1.0:
            # Loop-invariant value (key masking, materialized constants):
            # trivially predictable and not a dependence edge of the cipher.
            continue
        if trace.static.is_flag[static_index]:
            # Single-bit compare flags (e.g. the software multiply's borrow
            # correction) are branch-predictor material; predicting them
            # cannot break a diffusion recurrence.
            continue
        if categories[static_index] in DIFFUSION_CATEGORIES:
            diffusion_rates.append(rate)
    return {
        "best_diffusion_hit_rate": max(diffusion_rates, default=0.0),
        "mean_diffusion_hit_rate": (
            sum(diffusion_rates) / len(diffusion_rates)
            if diffusion_rates else 0.0
        ),
        "best_overall_hit_rate": max(all_rates, default=0.0),
    }


def render(rows: list[ValuePredictionRow]) -> str:
    lines = [
        "Value prediction study (sec 4.3): last-value predictor hit rates",
        f"{'Cipher':<10} {'best-diffusion':>15} {'mean-diffusion':>15} "
        f"{'best-overall':>13}",
    ]
    for row in rows:
        lines.append(
            f"{row.cipher:<10} {row.best_diffusion_hit_rate:>14.1%} "
            f"{row.mean_diffusion_hit_rate:>15.1%} "
            f"{row.best_overall_hit_rate:>13.1%}"
        )
    best = max(row.best_diffusion_hit_rate for row in rows)
    lines.append(
        f"most predictable diffusion edge across the suite: {best:.1%} "
        f"(paper: 6.3%)"
    )
    return "\n".join(lines)
