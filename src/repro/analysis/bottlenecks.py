"""Figure 5: analysis of bottlenecks in the cipher kernels.

The paper's methodology: start from the dataflow machine and re-insert one
bottleneck at a time -- *Alias* (conservative load/store ordering), *Branch*
(real predictor + misprediction penalty), *Issue* (4-wide issue), *Mem*
(realistic cache hierarchy), *Res* (limited functional units), *Window*
(finite instruction window) -- plus *All* (the full baseline machine).
Each bar is that machine's performance relative to the dataflow machine:
a bar near 1.0 means the bottleneck does not constrain the cipher at all.

The paper plots the ciphers that were not already running at dataflow speed;
this harness measures all eight and lets the caller filter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa import Features
from repro.kernels import KERNEL_NAMES, make_kernel
from repro.sim import DATAFLOW_BASEISA, BOTTLENECKS, bottleneck_config, simulate

DEFAULT_SESSION_BYTES = 1024


@dataclass
class BottleneckRow:
    cipher: str
    dataflow_cycles: int
    #: bottleneck name -> performance relative to dataflow (<= 1.0).
    relative: dict[str, float] = field(default_factory=dict)


def measure_cipher(
    name: str,
    session_bytes: int = DEFAULT_SESSION_BYTES,
    features: Features = Features.ROT,
) -> BottleneckRow:
    kernel = make_kernel(name, features)
    plaintext = bytes(i & 0xFF for i in range(session_bytes))
    run = kernel.encrypt(plaintext)
    dataflow = simulate(run.trace, DATAFLOW_BASEISA, run.warm_ranges)
    row = BottleneckRow(cipher=name, dataflow_cycles=dataflow.cycles)
    for which in BOTTLENECKS:
        stats = simulate(run.trace, bottleneck_config(which), run.warm_ranges)
        row.relative[which] = dataflow.cycles / stats.cycles
    return row


def figure5(
    session_bytes: int = DEFAULT_SESSION_BYTES,
    ciphers: tuple[str, ...] = KERNEL_NAMES,
) -> list[BottleneckRow]:
    return [measure_cipher(name, session_bytes) for name in ciphers]


def render_figure5(rows: list[BottleneckRow]) -> str:
    header = f"{'Cipher':<10}" + "".join(f"{b:>9}" for b in BOTTLENECKS)
    lines = [
        "Figure 5: Bottleneck Analysis (performance relative to dataflow)",
        header,
    ]
    for row in rows:
        cells = "".join(f"{row.relative[b]:>9.3f}" for b in BOTTLENECKS)
        lines.append(f"{row.cipher:<10}{cells}")
    return "\n".join(lines)
