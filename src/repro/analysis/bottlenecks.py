"""Figure 5: analysis of bottlenecks in the cipher kernels.

The paper's methodology: start from the dataflow machine and re-insert one
bottleneck at a time -- *Alias* (conservative load/store ordering), *Branch*
(real predictor + misprediction penalty), *Issue* (4-wide issue), *Mem*
(realistic cache hierarchy), *Res* (limited functional units), *Window*
(finite instruction window) -- plus *All* (the full baseline machine).
Each bar is that machine's performance relative to the dataflow machine:
a bar near 1.0 means the bottleneck does not constrain the cipher at all.

The paper plots the ciphers that were not already running at dataflow speed;
this harness measures all eight and lets the caller filter.  All eight
timing configs per cipher share one functional trace via the runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.rows import Row, coerce_options
from repro.isa import Features
from repro.kernels import KERNEL_NAMES
from repro.runner import (
    Experiment,
    ExperimentOptions,
    Runner,
    default_runner,
)
from repro.sim import BOTTLENECKS, DATAFLOW_BASEISA, bottleneck_config

DEFAULT_SESSION_BYTES = 1024

#: The dataflow reference plus one config per re-inserted bottleneck.
BOTTLENECK_CONFIGS = (DATAFLOW_BASEISA,) + tuple(
    bottleneck_config(which) for which in BOTTLENECKS
)


@dataclass
class BottleneckRow(Row):
    cipher: str
    dataflow_cycles: int
    #: bottleneck name -> performance relative to dataflow (<= 1.0).
    relative: dict[str, float] = field(default_factory=dict)


def default_options(
    session_bytes: int = DEFAULT_SESSION_BYTES,
    ciphers: tuple[str, ...] = KERNEL_NAMES,
) -> list[ExperimentOptions]:
    return [
        ExperimentOptions(
            cipher=name, features=Features.ROT, session_bytes=session_bytes
        )
        for name in ciphers
    ]


def run(
    options=None,
    *,
    runner: Runner | None = None,
) -> list[BottleneckRow]:
    runner = runner or default_runner()
    option_list = coerce_options(options, default_options)
    experiments = [
        Experiment(opt, config)
        for opt in option_list
        for config in BOTTLENECK_CONFIGS
    ]
    results = runner.run(experiments)
    width = len(BOTTLENECK_CONFIGS)
    rows = []
    for index, opt in enumerate(option_list):
        per_config = results[index * width:(index + 1) * width]
        dataflow_cycles = per_config[0].stats.cycles
        row = BottleneckRow(cipher=opt.cipher,
                            dataflow_cycles=dataflow_cycles)
        for which, result in zip(BOTTLENECKS, per_config[1:]):
            row.relative[which] = dataflow_cycles / result.stats.cycles
        rows.append(row)
    return rows


def measure(
    *,
    cipher: str,
    session_bytes: int = DEFAULT_SESSION_BYTES,
    features: Features = Features.ROT,
    runner: Runner | None = None,
) -> BottleneckRow:
    return run(
        ExperimentOptions(
            cipher=cipher, features=features, session_bytes=session_bytes
        ),
        runner=runner,
    )[0]


def figure5(
    session_bytes: int = DEFAULT_SESSION_BYTES,
    ciphers: tuple[str, ...] = KERNEL_NAMES,
    *,
    runner: Runner | None = None,
) -> list[BottleneckRow]:
    return run(default_options(session_bytes, ciphers), runner=runner)



def render_figure5(rows: list[BottleneckRow]) -> str:
    header = f"{'Cipher':<10}" + "".join(f"{b:>9}" for b in BOTTLENECKS)
    lines = [
        "Figure 5: Bottleneck Analysis (performance relative to dataflow)",
        header,
    ]
    for row in rows:
        cells = "".join(f"{row.relative[b]:>9.3f}" for b in BOTTLENECKS)
        lines.append(f"{row.cipher:<10}{cells}")
    return "\n".join(lines)
