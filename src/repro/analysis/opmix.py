"""Figure 7: characterization of cipher kernel operations.

Every instruction the builder emits carries an operation category -- with
idiom expansions tagged as a unit (a shift inside a synthesized rotate counts
as *rotate*; the address arithmetic and load of an S-box access count as
*substitution*), reproducing the paper's by-hand classification.  This
harness counts dynamic occurrences over a session and reports fractions.

No timing simulation is involved; the histogram is a pure function of the
functional trace, so it flows through the runner's derived-value cache
(keyed by the kernel program's content hash).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.rows import Row, coerce_options
from repro.isa import Features
from repro.isa import opcodes as op
from repro.kernels import KERNEL_NAMES
from repro.runner import ExperimentOptions, Runner, default_runner

#: Paper category order for rendering.
CATEGORIES = (
    op.ARITH,
    op.LOGIC,
    op.ROTATE,
    op.MULTIPLY,
    op.SUBST,
    op.PERMUTE,
    op.LDST,
    op.CONTROL,
)

CATEGORY_LABELS = {
    op.ARITH: "Arithmetic",
    op.LOGIC: "Logic",
    op.ROTATE: "Rotates",
    op.MULTIPLY: "Multiplies",
    op.SUBST: "Substitutions",
    op.PERMUTE: "Permutes",
    op.LDST: "Loads/Stores",
    op.CONTROL: "Control",
}

DEFAULT_SESSION_BYTES = 512


@dataclass
class OpMixRow(Row):
    cipher: str
    total: int
    counts: dict[str, int] = field(default_factory=dict)

    def fraction(self, category: str) -> float:
        return self.counts.get(category, 0) / self.total if self.total else 0.0


def default_options(
    session_bytes: int = DEFAULT_SESSION_BYTES,
    ciphers: tuple[str, ...] = KERNEL_NAMES,
    features: Features = Features.ROT,
) -> list[ExperimentOptions]:
    return [
        ExperimentOptions(
            cipher=name, features=features, session_bytes=session_bytes
        )
        for name in ciphers
    ]


def run(
    options=None,
    *,
    runner: Runner | None = None,
) -> list[OpMixRow]:
    runner = runner or default_runner()
    option_list = coerce_options(options, default_options)
    rows = []
    for opt in option_list:
        record = runner.cached_value(
            ["opmix", runner.fingerprint(opt)],
            lambda opt=opt: _histogram(runner, opt),
        )
        rows.append(OpMixRow(
            cipher=opt.cipher,
            total=int(record["total"]),
            counts={name: int(count)
                    for name, count in record["counts"].items()},
        ))
    return rows


def _histogram(runner: Runner, options: ExperimentOptions) -> dict:
    kernel_run = runner.functional(options)
    return {
        "total": kernel_run.instructions,
        "counts": kernel_run.trace.category_counts(),
    }


def measure(
    *,
    cipher: str,
    session_bytes: int = DEFAULT_SESSION_BYTES,
    features: Features = Features.ROT,
    runner: Runner | None = None,
) -> OpMixRow:
    return run(
        ExperimentOptions(
            cipher=cipher, features=features, session_bytes=session_bytes
        ),
        runner=runner,
    )[0]


def figure7(
    session_bytes: int = DEFAULT_SESSION_BYTES,
    ciphers: tuple[str, ...] = KERNEL_NAMES,
    features: Features = Features.ROT,
    *,
    runner: Runner | None = None,
) -> list[OpMixRow]:
    return run(
        default_options(session_bytes, ciphers, features), runner=runner
    )



def render_figure7(rows: list[OpMixRow]) -> str:
    header = f"{'Cipher':<10}" + "".join(
        f"{CATEGORY_LABELS[c][:9]:>10}" for c in CATEGORIES
    )
    lines = ["Figure 7: Kernel Operation Mix (fraction of dynamic instructions)",
             header]
    for row in rows:
        cells = "".join(f"{row.fraction(c):>10.3f}" for c in CATEGORIES)
        lines.append(f"{row.cipher:<10}{cells}")
    return "\n".join(lines)
