"""Figure 7: characterization of cipher kernel operations.

Every instruction the builder emits carries an operation category -- with
idiom expansions tagged as a unit (a shift inside a synthesized rotate counts
as *rotate*; the address arithmetic and load of an S-box access count as
*substitution*), reproducing the paper's by-hand classification.  This
harness counts dynamic occurrences over a session and reports fractions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa import Features
from repro.isa import opcodes as op
from repro.kernels import KERNEL_NAMES, make_kernel

#: Paper category order for rendering.
CATEGORIES = (
    op.ARITH,
    op.LOGIC,
    op.ROTATE,
    op.MULTIPLY,
    op.SUBST,
    op.PERMUTE,
    op.LDST,
    op.CONTROL,
)

CATEGORY_LABELS = {
    op.ARITH: "Arithmetic",
    op.LOGIC: "Logic",
    op.ROTATE: "Rotates",
    op.MULTIPLY: "Multiplies",
    op.SUBST: "Substitutions",
    op.PERMUTE: "Permutes",
    op.LDST: "Loads/Stores",
    op.CONTROL: "Control",
}

DEFAULT_SESSION_BYTES = 512


@dataclass
class OpMixRow:
    cipher: str
    total: int
    counts: dict[str, int] = field(default_factory=dict)

    def fraction(self, category: str) -> float:
        return self.counts.get(category, 0) / self.total if self.total else 0.0


def measure_cipher(
    name: str,
    session_bytes: int = DEFAULT_SESSION_BYTES,
    features: Features = Features.ROT,
) -> OpMixRow:
    kernel = make_kernel(name, features)
    plaintext = bytes(i & 0xFF for i in range(session_bytes))
    run = kernel.encrypt(plaintext)
    counts = run.trace.category_counts()
    return OpMixRow(cipher=name, total=run.instructions, counts=counts)


def figure7(
    session_bytes: int = DEFAULT_SESSION_BYTES,
    ciphers: tuple[str, ...] = KERNEL_NAMES,
    features: Features = Features.ROT,
) -> list[OpMixRow]:
    return [measure_cipher(name, session_bytes, features) for name in ciphers]


def render_figure7(rows: list[OpMixRow]) -> str:
    header = f"{'Cipher':<10}" + "".join(
        f"{CATEGORY_LABELS[c][:9]:>10}" for c in CATEGORIES
    )
    lines = ["Figure 7: Kernel Operation Mix (fraction of dynamic instructions)",
             header]
    for row in rows:
        cells = "".join(f"{row.fraction(c):>10.3f}" for c in CATEGORIES)
        lines.append(f"{row.cipher:<10}{cells}")
    return "\n".join(lines)
