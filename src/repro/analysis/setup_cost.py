"""Figure 6: cipher setup cost as a function of session length.

For each cipher: run the RISC-A key-setup routine once and the encryption
kernel over a sample session on the baseline machine, then report setup's
share of total session time, ``setup / (setup + n * cycles_per_byte)``, over
the paper's 16 B .. 64 KB session sweep.  Setup is paid once per session
(the paper's SSL session model), so long sessions amortize it.

Both cycle counts are ordinary runner experiments (``kind='setup'`` and
``kind='encrypt'`` on the baseline machine), so the whole figure is two
cached timing results per cipher.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.rows import Row, coerce_options
from repro.isa import Features
from repro.kernels.registry import KERNEL_NAMES
from repro.runner import (
    Experiment,
    ExperimentOptions,
    Runner,
    default_runner,
)
from repro.sim import BASE4W

SESSION_LENGTHS = (16, 64, 256, 1024, 4096, 16384, 65536)
_SAMPLE_BYTES = 512


@dataclass
class SetupCostRow(Row):
    cipher: str
    setup_cycles: int
    kernel_cycles_per_byte: float
    #: session length -> fraction of run time spent in setup.
    fraction: dict[int, float] = field(default_factory=dict)


def default_options(
    ciphers: tuple[str, ...] = KERNEL_NAMES,
    features: Features = Features.ROT,
) -> list[ExperimentOptions]:
    return [
        ExperimentOptions(
            cipher=name, features=features, session_bytes=_SAMPLE_BYTES
        )
        for name in ciphers
    ]


def run(
    options=None,
    *,
    lengths: tuple[int, ...] = SESSION_LENGTHS,
    runner: Runner | None = None,
) -> list[SetupCostRow]:
    runner = runner or default_runner()
    option_list = coerce_options(options, default_options)
    experiments = []
    for opt in option_list:
        setup_options = ExperimentOptions(
            cipher=opt.cipher, kind="setup", session_bytes=0, key=opt.key
        )
        kernel_options = opt.with_(session_bytes=_SAMPLE_BYTES,
                                   plaintext=None)
        experiments.append(Experiment(setup_options, BASE4W))
        experiments.append(Experiment(kernel_options, BASE4W))
    results = runner.run(experiments)
    rows = []
    for index, opt in enumerate(option_list):
        setup_cycles = results[2 * index].stats.cycles
        per_byte = results[2 * index + 1].stats.cycles / _SAMPLE_BYTES
        row = SetupCostRow(
            cipher=opt.cipher,
            setup_cycles=setup_cycles,
            kernel_cycles_per_byte=per_byte,
        )
        for length in lengths:
            total = setup_cycles + length * per_byte
            row.fraction[length] = setup_cycles / total
        rows.append(row)
    return rows


def measure(
    *,
    cipher: str,
    lengths: tuple[int, ...] = SESSION_LENGTHS,
    features: Features = Features.ROT,
    runner: Runner | None = None,
) -> SetupCostRow:
    return run(
        ExperimentOptions(
            cipher=cipher, features=features, session_bytes=_SAMPLE_BYTES
        ),
        lengths=lengths,
        runner=runner,
    )[0]


def figure6(
    lengths: tuple[int, ...] = SESSION_LENGTHS,
    ciphers: tuple[str, ...] = KERNEL_NAMES,
    *,
    runner: Runner | None = None,
) -> list[SetupCostRow]:
    return run(default_options(ciphers), lengths=lengths, runner=runner)



def render_figure6(rows: list[SetupCostRow]) -> str:
    lengths = sorted(rows[0].fraction) if rows else []
    header = f"{'Cipher':<10} {'setup-cyc':>10}" + "".join(
        f"{_fmt_len(n):>8}" for n in lengths
    )
    lines = ["Figure 6: Setup Cost as a Function of Session Length "
             "(fraction of session time)", header]
    for row in rows:
        cells = "".join(f"{row.fraction[n]:>8.1%}" for n in lengths)
        lines.append(f"{row.cipher:<10} {row.setup_cycles:>10}{cells}")
    return "\n".join(lines)


def _fmt_len(n: int) -> str:
    return f"{n // 1024}k" if n >= 1024 else str(n)
