"""Figure 6: cipher setup cost as a function of session length.

For each cipher: run the RISC-A key-setup routine once and the encryption
kernel over a sample session on the baseline machine, then report setup's
share of total session time, ``setup / (setup + n * cycles_per_byte)``, over
the paper's 16 B .. 64 KB session sweep.  Setup is paid once per session
(the paper's SSL session model), so long sessions amortize it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa import Features
from repro.kernels import make_kernel
from repro.kernels.registry import KERNEL_NAMES
from repro.kernels.setup_registry import make_setup
from repro.sim import BASE4W, simulate

SESSION_LENGTHS = (16, 64, 256, 1024, 4096, 16384, 65536)
_SAMPLE_BYTES = 512


@dataclass
class SetupCostRow:
    cipher: str
    setup_cycles: int
    kernel_cycles_per_byte: float
    #: session length -> fraction of run time spent in setup.
    fraction: dict[int, float] = field(default_factory=dict)


def measure_cipher(
    name: str,
    lengths: tuple[int, ...] = SESSION_LENGTHS,
    features: Features = Features.ROT,
) -> SetupCostRow:
    setup_run = make_setup(name).run()
    setup_cycles = simulate(setup_run.trace, BASE4W).cycles

    kernel = make_kernel(name, features)
    plaintext = bytes(i & 0xFF for i in range(_SAMPLE_BYTES))
    kernel_run = kernel.encrypt(plaintext)
    kernel_cycles = simulate(
        kernel_run.trace, BASE4W, kernel_run.warm_ranges
    ).cycles
    per_byte = kernel_cycles / _SAMPLE_BYTES

    row = SetupCostRow(
        cipher=name,
        setup_cycles=setup_cycles,
        kernel_cycles_per_byte=per_byte,
    )
    for length in lengths:
        total = setup_cycles + length * per_byte
        row.fraction[length] = setup_cycles / total
    return row


def figure6(
    lengths: tuple[int, ...] = SESSION_LENGTHS,
    ciphers: tuple[str, ...] = KERNEL_NAMES,
) -> list[SetupCostRow]:
    return [measure_cipher(name, lengths) for name in ciphers]


def render_figure6(rows: list[SetupCostRow]) -> str:
    lengths = sorted(rows[0].fraction) if rows else []
    header = f"{'Cipher':<10} {'setup-cyc':>10}" + "".join(
        f"{_fmt_len(n):>8}" for n in lengths
    )
    lines = ["Figure 6: Setup Cost as a Function of Session Length "
             "(fraction of session time)", header]
    for row in rows:
        cells = "".join(f"{row.fraction[n]:>8.1%}" for n in lengths)
        lines.append(f"{row.cipher:<10} {row.setup_cycles:>10}{cells}")
    return "\n".join(lines)


def _fmt_len(n: int) -> str:
    return f"{n // 1024}k" if n >= 1024 else str(n)
