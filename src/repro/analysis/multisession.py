"""Inter-session parallelism study (the paper's section 8 future work).

The paper closes by proposing *cryptographic processors* that use
fine-grained multithreading to extract inter-session parallelism: one CBC
session is a serial recurrence, but a secure web server or VPN router
encrypts many independent sessions concurrently.

This harness builds that experiment on the existing substrate: N sessions
of the same cipher (disjoint keys-by-layout address spaces, per-thread
architectural registers) are interleaved round-robin -- the instruction mix
a fine-grained multithreaded fetch stage would supply -- and run through the
shared-resource timing model.  Aggregate throughput versus thread count
shows how quickly independent sessions fill the machine that a single
session cannot.

Per-session functional traces come from the runner (deduped with every
other harness that touches the same cipher/key/offset combination), and the
interleaved timing simulations are disk-cached keyed by the component
session fingerprints plus the thread count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.rows import Row, coerce_options, warn_deprecated
from repro.isa import Features
from repro.kernels import KERNEL_NAMES
from repro.runner import ExperimentOptions, Runner, default_runner
from repro.sim import MachineConfig, EIGHTW_PLUS
from repro.sim.trace import StaticInfo, Trace

#: Address-space stride between sessions: ~1 MB apart (disjoint), staggered
#: by a non-power-of-two amount so sessions do not alias onto the same cache
#: sets, and 1KB-aligned as the SBOX instruction requires.
SESSION_STRIDE = 0x100000 + 0x4C00

DEFAULT_SESSION_BYTES = 512
DEFAULT_THREAD_COUNTS = (1, 2, 4, 8)


def interleave_traces(traces: list[Trace]) -> Trace:
    """Round-robin merge of per-session traces into one multithreaded trace.

    Each thread gets its own 32-register window (the per-thread register
    file of a fine-grained MT core) and its own copy of the static arrays;
    branch outcomes are precomputed since adjacency no longer encodes them.
    """
    if not traces:
        raise ValueError("need at least one trace")
    merged_static = StaticInfo([], [], [], [], [], [], [], [], [], [], [],
                               [], [], [])
    offsets = []
    for thread, trace in enumerate(traces):
        source = trace.static
        offsets.append(len(merged_static.klass))
        reg_base = 32 * thread
        merged_static.klass.extend(source.klass)
        merged_static.dest.extend(
            d if d < 0 else d + reg_base for d in source.dest
        )
        merged_static.srcs.extend(
            tuple(r + reg_base for r in sources) for sources in source.srcs
        )
        merged_static.addr_srcs.extend(
            tuple(r + reg_base for r in sources)
            for sources in source.addr_srcs
        )
        for name in ("is_load", "is_store", "is_branch", "is_cond_branch",
                     "mem_size", "sbox_table", "sbox_aliased", "is_sync",
                     "category", "is_flag"):
            getattr(merged_static, name).extend(getattr(source, name))

    seq: list[int] = []
    addrs: list[int] = []
    taken: list[bool] = []
    cursors = [0] * len(traces)
    live = True
    while live:
        live = False
        for thread, trace in enumerate(traces):
            position = cursors[thread]
            if position >= len(trace.seq):
                continue
            live = True
            seq.append(trace.seq[position] + offsets[thread])
            addrs.append(trace.addrs[position])
            taken.append(trace.taken(position))
            cursors[thread] = position + 1
    return Trace(
        program=traces[0].program,
        static=merged_static,
        seq=seq,
        addrs=addrs,
        instructions_executed=len(seq),
        taken_flags=taken,
    )


@dataclass
class MultisessionRow(Row):
    cipher: str
    threads: int
    total_bytes: int
    cycles: int
    aggregate_rate: float          # bytes / 1000 cycles across all sessions
    speedup_vs_one: float = 1.0


def session_options(
    base: ExperimentOptions, thread: int
) -> ExperimentOptions:
    """The options for session *thread* of a multisession run: its own key,
    payload, and a disjoint slice of the address space."""
    return base.with_(
        key=bytes(
            (thread * 31 + i) & 0xFF or 1
            for i in range(_key_bytes(base.cipher))
        ),
        plaintext=bytes(
            (thread * 17 + i) & 0xFF for i in range(base.session_bytes)
        ),
        base_offset=SESSION_STRIDE * thread,
    )


def default_options(
    session_bytes: int = DEFAULT_SESSION_BYTES,
    ciphers: tuple[str, ...] = KERNEL_NAMES,
    features: Features = Features.OPT,
) -> list[ExperimentOptions]:
    return [
        ExperimentOptions(
            cipher=name, features=features, session_bytes=session_bytes
        )
        for name in ciphers
    ]


def run(
    options=None,
    *,
    thread_counts: tuple[int, ...] = DEFAULT_THREAD_COUNTS,
    config: MachineConfig = EIGHTW_PLUS,
    runner: Runner | None = None,
) -> list[MultisessionRow]:
    """Aggregate throughput of N interleaved sessions per option, one row
    per (cipher, thread count)."""
    runner = runner or default_runner()
    option_list = coerce_options(options, default_options)
    rows = []
    for opt in option_list:
        max_threads = max(thread_counts)
        per_thread = [
            session_options(opt, thread) for thread in range(max_threads)
        ]
        runs = [runner.functional(o) for o in per_thread]
        fingerprints = [runner.fingerprint(o) for o in per_thread]
        base_rate = None
        for threads in thread_counts:
            merged = interleave_traces([run.trace for run in runs[:threads]])
            warm = [r for run in runs[:threads] for r in run.warm_ranges]
            stats = runner.simulate_trace(
                merged,
                config,
                warm,
                key_parts=["multisession", fingerprints[:threads], threads],
            )
            total_bytes = threads * opt.session_bytes
            rate = stats.bytes_per_kilocycle(total_bytes)
            if base_rate is None:
                base_rate = rate
            rows.append(MultisessionRow(
                cipher=opt.cipher,
                threads=threads,
                total_bytes=total_bytes,
                cycles=stats.cycles,
                aggregate_rate=rate,
                speedup_vs_one=rate / base_rate,
            ))
    return rows


def measure(
    *args,
    cipher: str | None = None,
    thread_counts: tuple[int, ...] = DEFAULT_THREAD_COUNTS,
    session_bytes: int = DEFAULT_SESSION_BYTES,
    config: MachineConfig = EIGHTW_PLUS,
    features: Features = Features.OPT,
    runner: Runner | None = None,
) -> list[MultisessionRow]:
    """Aggregate throughput of N interleaved sessions of one cipher.

    Positional use (``measure(name, ...)``) is deprecated; pass
    ``cipher=...`` instead.
    """
    if args:
        warn_deprecated(
            "multisession.measure(name, ...)",
            "multisession.measure(cipher=...)",
        )
        if cipher is not None or len(args) > 5:
            raise TypeError("measure() got conflicting positional arguments")
        names = ("cipher", "thread_counts", "session_bytes", "config",
                 "features")
        positional = dict(zip(names, args))
        cipher = positional.get("cipher", cipher)
        thread_counts = positional.get("thread_counts", thread_counts)
        session_bytes = positional.get("session_bytes", session_bytes)
        config = positional.get("config", config)
        features = positional.get("features", features)
    if cipher is None:
        raise TypeError("measure() requires a cipher")
    return run(
        ExperimentOptions(
            cipher=cipher, features=features, session_bytes=session_bytes
        ),
        thread_counts=thread_counts,
        config=config,
        runner=runner,
    )


def _key_bytes(name: str) -> int:
    from repro.ciphers.suite import SUITE_BY_NAME

    return SUITE_BY_NAME[name].key_bytes


def render(rows_by_cipher: dict[str, list[MultisessionRow]]) -> str:
    thread_counts = [row.threads for row in next(iter(rows_by_cipher.values()))]
    lines = [
        "Inter-session parallelism (sec 8): aggregate bytes/1000cyc on 8W+",
        f"{'Cipher':<10}" + "".join(f"{t:>4} thr" for t in thread_counts)
        + "   scaling",
    ]
    for name, rows in rows_by_cipher.items():
        cells = "".join(f"{row.aggregate_rate:>8.1f}" for row in rows)
        lines.append(f"{name:<10}{cells}   x{rows[-1].speedup_vs_one:.2f}")
    return "\n".join(lines)
