"""Experiment harnesses: one module per paper table/figure.

Every simulation-backed module exposes the same surface:

* ``run(options=None, *, runner=None) -> list[Row]`` -- the uniform entry
  point.  ``options`` is ``None`` (paper defaults), one
  :class:`repro.runner.ExperimentOptions`, or a list of them.
* ``measure(*, cipher=..., ...) -> Row`` -- keyword-only single-cipher
  convenience.
* a figure/table alias (``figure4``, ``figure5``, ...) matching the paper's
  numbering, and a ``render_*`` text formatter.
* a ``*Row`` dataclass with ``as_dict()`` / ``as_tuple()``.

The legacy positional ``measure_cipher(name, ...)`` shims were removed
after five releases of the uniform ``run(options)`` API; call
``measure(cipher=...)`` instead.
"""

from repro.analysis import (
    bottlenecks,
    multisession,
    opmix,
    setup_cost,
    speedups,
    ssl_model,
    tables,
    throughput,
    value_prediction,
)
from repro.analysis.bottlenecks import BottleneckRow
from repro.analysis.multisession import MultisessionRow
from repro.analysis.opmix import OpMixRow
from repro.analysis.rows import Row
from repro.analysis.setup_cost import SetupCostRow
from repro.analysis.speedups import SpeedupRow, SpeedupSummary
from repro.analysis.ssl_model import SSLBreakdown, SSLModelParams
from repro.analysis.tables import Table1Row
from repro.analysis.throughput import ThroughputRow
from repro.analysis.value_prediction import ValuePredictionRow

__all__ = [
    "BottleneckRow",
    "MultisessionRow",
    "OpMixRow",
    "Row",
    "SSLBreakdown",
    "SSLModelParams",
    "SetupCostRow",
    "SpeedupRow",
    "SpeedupSummary",
    "Table1Row",
    "ThroughputRow",
    "ValuePredictionRow",
    "bottlenecks",
    "multisession",
    "opmix",
    "setup_cost",
    "speedups",
    "ssl_model",
    "tables",
    "throughput",
    "value_prediction",
]
