"""Experiment harnesses: one module per paper table/figure."""

from repro.analysis import (
    bottlenecks,
    multisession,
    opmix,
    setup_cost,
    speedups,
    ssl_model,
    tables,
    throughput,
    value_prediction,
)

__all__ = [
    "bottlenecks",
    "multisession",
    "opmix",
    "setup_cost",
    "speedups",
    "ssl_model",
    "tables",
    "throughput",
    "value_prediction",
]
