"""Renderers for the paper's Table 1 (cipher suite) and Table 2 (machines)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.rows import Row
from repro.ciphers.suite import SUITE
from repro.sim.config import DATAFLOW, EIGHTW_PLUS, FOURW, FOURW_PLUS, MachineConfig


@dataclass
class Table1Row(Row):
    cipher: str
    key_bits: int
    block_bits: int
    rounds: int
    author: str
    example_application: str


def run(options=None) -> list[Table1Row]:
    """Uniform entry point; Table 1 is static metadata, so ``options``
    (accepted for signature parity) is unused."""
    del options
    return [
        Table1Row(
            cipher=info.name,
            key_bits=info.key_bits,
            block_bits=info.block_bits,
            rounds=info.rounds_per_block,
            author=info.author,
            example_application=info.example_application,
        )
        for info in SUITE
    ]


def render_table1() -> str:
    lines = [
        "Table 1: Private Key Symmetric Ciphers Analyzed",
        f"{'Cipher':<10} {'Key':>5} {'Blk':>5} {'Rnds':>5}  "
        f"{'Author':<14} {'Example Application'}",
    ]
    for row in run():
        lines.append(
            f"{row.cipher:<10} {row.key_bits:>5} {row.block_bits:>5} "
            f"{row.rounds:>5}  {row.author:<14} "
            f"{row.example_application}"
        )
    return "\n".join(lines)


def _fmt(value) -> str:
    if value is None or (isinstance(value, int) and value >= 10**6):
        return "inf"
    return str(value)


def render_table2(
    configs: tuple[MachineConfig, ...] = (FOURW, FOURW_PLUS, EIGHTW_PLUS, DATAFLOW),
) -> str:
    rows = [
        ("Fetch width", lambda c: _fmt(c.fetch_width)),
        ("Fetch groups/cycle", lambda c: _fmt(c.fetch_groups_per_cycle)),
        ("Window size", lambda c: _fmt(c.window_size)),
        ("Issue width", lambda c: _fmt(c.issue_width)),
        ("IALU resources", lambda c: _fmt(c.num_ialu)),
        ("Mult slots (64b=2)", lambda c: _fmt(c.mul_slots)),
        ("Mul32/MULMOD lat", lambda c: f"{c.mul32_latency}/{c.mulmod_latency}"),
        ("D-cache ports", lambda c: _fmt(c.dcache_ports)),
        ("SBox caches", lambda c: _fmt(c.sbox_caches)),
        ("SBox cache ports", lambda c: _fmt(c.sbox_cache_ports)),
        ("Rotator/XBOX units", lambda c: _fmt(c.num_rotator)),
    ]
    header = f"{'':<20}" + "".join(f"{c.name:>12}" for c in configs)
    lines = ["Table 2: Microarchitecture Models", header]
    for label, getter in rows:
        cells = "".join(f"{getter(c):>12}" for c in configs)
        lines.append(f"{label:<20}{cells}")
    return "\n".join(lines)
