"""Shared result-row protocol for the analysis harnesses.

Every harness returns a list of dataclass rows mixing in :class:`Row`, so
callers can rely on ``as_dict()`` / ``as_tuple()`` uniformly across the
whole of :mod:`repro.analysis` (some rows override ``as_tuple`` to keep
their historical metric-only shape).
"""

from __future__ import annotations

import dataclasses
import warnings


class Row:
    """Mixin giving analysis dataclass rows a uniform export surface."""

    def as_dict(self) -> dict:
        """Field-name -> value mapping (shallow; nested dicts shared)."""
        return {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
        }

    def as_tuple(self) -> tuple:
        """All field values in declaration order."""
        return tuple(self.as_dict().values())


def coerce_options(options, default_factory) -> list:
    """Normalize a harness ``run()`` argument to a list of options.

    Accepts a single :class:`~repro.runner.ExperimentOptions`, an iterable
    of them, or ``None`` (the harness's default sweep).
    """
    from repro.runner import ExperimentOptions

    if options is None:
        return list(default_factory())
    if isinstance(options, ExperimentOptions):
        return [options]
    return list(options)


def warn_deprecated(old: str, new: str) -> None:
    """Emit the suite's standard deprecation message for a legacy helper."""
    warnings.warn(
        f"{old} is deprecated; use {new}",
        DeprecationWarning,
        stacklevel=3,
    )
