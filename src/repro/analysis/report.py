"""Full-evaluation driver: regenerate every table and figure in one call.

``python -m repro.analysis.report [--session-bytes N] [--jobs N]
[--no-cache]`` prints the complete reproduction of the paper's evaluation
section.  Every experiment flows through one shared
:class:`repro.runner.Runner`, so functional traces are simulated once,
timing runs fan out across ``--jobs`` worker processes, and a re-run with a
warm on-disk cache touches no simulator at all.  The benchmark suite under
``benchmarks/`` calls the same entry points one experiment at a time.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis import (
    bottlenecks,
    opmix,
    setup_cost,
    speedups,
    ssl_model,
    tables,
    throughput,
    value_prediction,
)
from repro.runner import Runner


def full_report(
    session_bytes: int = 1024,
    stream=sys.stdout,
    *,
    runner: Runner | None = None,
) -> None:
    """Run every experiment and print the paper-format results."""
    from repro.runner import default_runner

    runner = runner or default_runner()

    def emit(text: str) -> None:
        print(text, file=stream)
        print(file=stream)

    start = time.time()
    emit(tables.render_table1())
    emit(ssl_model.render_figure2(ssl_model.figure2()))
    emit(throughput.render_figure4(
        throughput.figure4(session_bytes, runner=runner)
    ))
    emit(bottlenecks.render_figure5(
        bottlenecks.figure5(session_bytes, runner=runner)
    ))
    emit(setup_cost.render_figure6(setup_cost.figure6(runner=runner)))
    emit(opmix.render_figure7(
        opmix.figure7(min(session_bytes, 512), runner=runner)
    ))
    emit(value_prediction.render(
        value_prediction.study(min(session_bytes, 512), runner=runner)
    ))
    emit(tables.render_table2())
    emit(speedups.render_figure10(
        speedups.figure10(session_bytes, runner=runner)
    ))
    print(f"[report generated in {time.time() - start:.1f}s, "
          f"session={session_bytes}B; {runner.stats.summary()}]",
          file=stream)


def main(argv: list[str] | None = None) -> int:
    from repro.tools.cli import (
        add_runner_arguments,
        add_session_argument,
        observability_from_args,
        runner_from_args,
    )

    parser = argparse.ArgumentParser(description=__doc__)
    add_session_argument(parser)
    add_runner_arguments(parser)
    args = parser.parse_args(argv)
    obs = observability_from_args(args, tool="report")
    with obs, _report_span(obs, args.session_bytes):
        full_report(
            session_bytes=args.session_bytes,
            runner=runner_from_args(args, obs=obs),
        )
    for line in obs.report():
        print(line)
    for path in obs.write():
        print(f"wrote {path}")
    return 0


def _report_span(obs, session_bytes: int):
    """One umbrella span so the whole report shows as a top-level track."""
    from contextlib import nullcontext

    if obs.tracer is None:
        return nullcontext()
    return obs.tracer.span(
        "full-report", "runner", {"session_bytes": session_bytes}
    )


if __name__ == "__main__":
    raise SystemExit(main())
