"""Full-evaluation driver: regenerate every table and figure in one call.

``python -m repro.analysis.report [--session N]`` prints the complete
reproduction of the paper's evaluation section.  The benchmark suite under
``benchmarks/`` calls the same entry points one experiment at a time.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis import (
    bottlenecks,
    opmix,
    setup_cost,
    speedups,
    ssl_model,
    tables,
    throughput,
    value_prediction,
)


def full_report(session_bytes: int = 1024, stream=sys.stdout) -> None:
    """Run every experiment and print the paper-format results."""

    def emit(text: str) -> None:
        print(text, file=stream)
        print(file=stream)

    start = time.time()
    emit(tables.render_table1())
    emit(ssl_model.render_figure2(ssl_model.figure2()))
    emit(throughput.render_figure4(throughput.figure4(session_bytes)))
    emit(bottlenecks.render_figure5(bottlenecks.figure5(session_bytes)))
    emit(setup_cost.render_figure6(setup_cost.figure6()))
    emit(opmix.render_figure7(opmix.figure7(min(session_bytes, 512))))
    emit(value_prediction.render(
        value_prediction.study(min(session_bytes, 512))
    ))
    emit(tables.render_table2())
    emit(speedups.render_figure10(speedups.figure10(session_bytes)))
    print(f"[report generated in {time.time() - start:.1f}s, "
          f"session={session_bytes}B]", file=stream)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--session", type=int, default=1024,
        help="session length in bytes for the simulated experiments "
             "(the paper uses 4096; smaller is faster)",
    )
    args = parser.parse_args(argv)
    full_report(session_bytes=args.session)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
