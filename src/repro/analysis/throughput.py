"""Figure 4: cipher encryption performance (bytes per 1000 cycles).

For each cipher the paper reports four columns:

* **1 CPI** -- the rate a machine retiring one instruction per cycle would
  achieve: ``1000 / (instructions per byte)``,
* **Alpha** -- a real 600 MHz 21264 workstation (here: the ``ALPHA21264``
  simulator configuration, DESIGN.md substitution #2),
* **4W** -- the detailed baseline model (section 3.2), and
* **DF** -- the dataflow machine (infinite resources, perfect everything).

All columns run the *original* kernels with rotate instructions (the
``ROT`` feature level), matching the paper's baseline code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa import Features
from repro.kernels import KERNEL_NAMES, make_kernel
from repro.sim import ALPHA21264, BASE4W, DATAFLOW_BASEISA, simulate

DEFAULT_SESSION_BYTES = 1024


@dataclass
class ThroughputRow:
    cipher: str
    cpi1: float
    alpha: float
    four_wide: float
    dataflow: float

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.cpi1, self.alpha, self.four_wide, self.dataflow)


def measure_cipher(
    name: str,
    session_bytes: int = DEFAULT_SESSION_BYTES,
    features: Features = Features.ROT,
) -> ThroughputRow:
    """Measure one cipher's Figure 4 row."""
    kernel = make_kernel(name, features)
    plaintext = bytes(i & 0xFF for i in range(session_bytes))
    run = kernel.encrypt(plaintext)
    cpi1 = 1000.0 / run.instructions_per_byte
    results = {}
    for config in (ALPHA21264, BASE4W, DATAFLOW_BASEISA):
        stats = simulate(run.trace, config, run.warm_ranges)
        results[config.name] = stats.bytes_per_kilocycle(session_bytes)
    return ThroughputRow(
        cipher=name,
        cpi1=cpi1,
        alpha=results[ALPHA21264.name],
        four_wide=results[BASE4W.name],
        dataflow=results[DATAFLOW_BASEISA.name],
    )


def figure4(
    session_bytes: int = DEFAULT_SESSION_BYTES,
    ciphers: tuple[str, ...] = KERNEL_NAMES,
) -> list[ThroughputRow]:
    """Regenerate Figure 4 for all (or selected) ciphers."""
    return [measure_cipher(name, session_bytes) for name in ciphers]


def render_figure4(rows: list[ThroughputRow]) -> str:
    lines = [
        "Figure 4: Cipher Encryption Performance (bytes / 1000 cycles)",
        f"{'Cipher':<10} {'1-CPI':>8} {'Alpha':>8} {'4W':>8} {'DF':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row.cipher:<10} {row.cpi1:>8.2f} {row.alpha:>8.2f} "
            f"{row.four_wide:>8.2f} {row.dataflow:>8.2f}"
        )
    return "\n".join(lines)
