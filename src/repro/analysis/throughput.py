"""Figure 4: cipher encryption performance (bytes per 1000 cycles).

For each cipher the paper reports four columns:

* **1 CPI** -- the rate a machine retiring one instruction per cycle would
  achieve: ``1000 / (instructions per byte)``,
* **Alpha** -- a real 600 MHz 21264 workstation (here: the ``ALPHA21264``
  simulator configuration, DESIGN.md substitution #2),
* **4W** -- the detailed baseline model (section 3.2), and
* **DF** -- the dataflow machine (infinite resources, perfect everything).

All columns run the *original* kernels with rotate instructions (the
``ROT`` feature level), matching the paper's baseline code.  Measurements
go through the :mod:`repro.runner` engine: the three timing configs share
one functional trace, and results are served from the content-hashed cache
when available.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.rows import Row, coerce_options
from repro.isa import Features
from repro.kernels import KERNEL_NAMES
from repro.runner import (
    Experiment,
    ExperimentOptions,
    Runner,
    default_runner,
)
from repro.sim import ALPHA21264, BASE4W, DATAFLOW_BASEISA

DEFAULT_SESSION_BYTES = 1024

#: The figure's machine columns (besides the analytic 1-CPI column).
THROUGHPUT_CONFIGS = (ALPHA21264, BASE4W, DATAFLOW_BASEISA)


@dataclass
class ThroughputRow(Row):
    cipher: str
    cpi1: float
    alpha: float
    four_wide: float
    dataflow: float

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Metric columns only (historical shape; ``as_dict`` has all)."""
        return (self.cpi1, self.alpha, self.four_wide, self.dataflow)


def default_options(
    session_bytes: int = DEFAULT_SESSION_BYTES,
    ciphers: tuple[str, ...] = KERNEL_NAMES,
) -> list[ExperimentOptions]:
    """The figure's standard sweep: every cipher, ROT kernels."""
    return [
        ExperimentOptions(
            cipher=name, features=Features.ROT, session_bytes=session_bytes
        )
        for name in ciphers
    ]


def run(
    options=None,
    *,
    runner: Runner | None = None,
) -> list[ThroughputRow]:
    """Measure Figure 4 rows for ``options`` (default: the full suite).

    ``options`` may be one ``ExperimentOptions``, an iterable of them, or
    ``None``.
    """
    runner = runner or default_runner()
    option_list = coerce_options(options, default_options)
    experiments = [
        Experiment(opt, config)
        for opt in option_list
        for config in THROUGHPUT_CONFIGS
    ]
    results = runner.run(experiments)
    width = len(THROUGHPUT_CONFIGS)
    rows = []
    for index, opt in enumerate(option_list):
        per_config = results[index * width:(index + 1) * width]
        by_name = {result.config_name: result for result in per_config}
        rows.append(ThroughputRow(
            cipher=opt.cipher,
            cpi1=1000.0 / per_config[0].instructions_per_byte,
            alpha=by_name[ALPHA21264.name].bytes_per_kilocycle(),
            four_wide=by_name[BASE4W.name].bytes_per_kilocycle(),
            dataflow=by_name[DATAFLOW_BASEISA.name].bytes_per_kilocycle(),
        ))
    return rows


def measure(
    *,
    cipher: str,
    session_bytes: int = DEFAULT_SESSION_BYTES,
    features: Features = Features.ROT,
    runner: Runner | None = None,
) -> ThroughputRow:
    """Measure one cipher's Figure 4 row."""
    return run(
        ExperimentOptions(
            cipher=cipher, features=features, session_bytes=session_bytes
        ),
        runner=runner,
    )[0]


def figure4(
    session_bytes: int = DEFAULT_SESSION_BYTES,
    ciphers: tuple[str, ...] = KERNEL_NAMES,
    *,
    runner: Runner | None = None,
) -> list[ThroughputRow]:
    """Regenerate Figure 4 for all (or selected) ciphers."""
    return run(default_options(session_bytes, ciphers), runner=runner)



def render_figure4(rows: list[ThroughputRow]) -> str:
    lines = [
        "Figure 4: Cipher Encryption Performance (bytes / 1000 cycles)",
        f"{'Cipher':<10} {'1-CPI':>8} {'Alpha':>8} {'4W':>8} {'DF':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row.cipher:<10} {row.cpi1:>8.2f} {row.alpha:>8.2f} "
            f"{row.four_wide:>8.2f} {row.dataflow:>8.2f}"
        )
    return "\n".join(lines)
