"""Figure 10: relative performance of the optimized kernels.

Five bars per cipher, each a speedup in total cycles for a session,
normalized to the original code *with rotates* on the 4W machine:

* ``Orig/4W``  -- original code without rotate instructions on 4W
  (shows the penalty of an ISA lacking rotates; < 1.0),
* ``Opt/4W``   -- the fully optimized kernel on 4W,
* ``Opt/4W+``  -- plus SBox caches and extra rotator units,
* ``Opt/8W+``  -- double execution bandwidth,
* ``Opt/DF``   -- the optimized kernel on the dataflow machine.

The section 6 headline numbers -- mean optimized speedup versus the
rotate baseline and versus the no-rotate baseline -- fall out of the same
measurements (:func:`summary`).  Each cipher needs three functional traces
(ROT, NOROT, OPT) and six timing runs; the runner dedups and caches them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.rows import Row, coerce_options
from repro.isa import Features
from repro.kernels import KERNEL_NAMES
from repro.runner import (
    Experiment,
    ExperimentOptions,
    Runner,
    default_runner,
)
from repro.sim import DATAFLOW, EIGHTW_PLUS, FOURW, FOURW_PLUS

DEFAULT_SESSION_BYTES = 1024

BARS = ("orig/4W", "opt/4W", "opt/4W+", "opt/8W+", "opt/DF")


@dataclass
class SpeedupRow(Row):
    cipher: str
    baseline_cycles: int            # orig-rot on 4W (the normalization)
    orig_4w: float                  # orig-norot on 4W
    opt_4w: float
    opt_4w_plus: float
    opt_8w_plus: float
    opt_dataflow: float

    def bar(self, name: str) -> float:
        return {
            "orig/4W": self.orig_4w,
            "opt/4W": self.opt_4w,
            "opt/4W+": self.opt_4w_plus,
            "opt/8W+": self.opt_8w_plus,
            "opt/DF": self.opt_dataflow,
        }[name]


def default_options(
    session_bytes: int = DEFAULT_SESSION_BYTES,
    ciphers: tuple[str, ...] = KERNEL_NAMES,
) -> list[ExperimentOptions]:
    return [
        ExperimentOptions(
            cipher=name, features=Features.ROT, session_bytes=session_bytes
        )
        for name in ciphers
    ]


def _experiments(opt: ExperimentOptions) -> list[Experiment]:
    rot = opt.with_(features=Features.ROT)
    norot = opt.with_(features=Features.NOROT)
    optimized = opt.with_(features=Features.OPT)
    return [
        Experiment(rot, FOURW),
        Experiment(norot, FOURW),
        Experiment(optimized, FOURW),
        Experiment(optimized, FOURW_PLUS),
        Experiment(optimized, EIGHTW_PLUS),
        Experiment(optimized, DATAFLOW),
    ]


def run(
    options=None,
    *,
    runner: Runner | None = None,
) -> list[SpeedupRow]:
    """Measure Figure 10 rows (``options.features`` is ignored -- the bars
    fix the feature level per experiment)."""
    runner = runner or default_runner()
    option_list = coerce_options(options, default_options)
    batches = [_experiments(opt) for opt in option_list]
    results = runner.run([exp for batch in batches for exp in batch])
    rows = []
    width = 6
    for index, opt in enumerate(option_list):
        (rot_4w, norot_4w, opt_4w, opt_4wp, opt_8wp, opt_df) = (
            result.stats.cycles
            for result in results[index * width:(index + 1) * width]
        )
        rows.append(SpeedupRow(
            cipher=opt.cipher,
            baseline_cycles=rot_4w,
            orig_4w=rot_4w / norot_4w,
            opt_4w=rot_4w / opt_4w,
            opt_4w_plus=rot_4w / opt_4wp,
            opt_8w_plus=rot_4w / opt_8wp,
            opt_dataflow=rot_4w / opt_df,
        ))
    return rows


def measure(
    *,
    cipher: str,
    session_bytes: int = DEFAULT_SESSION_BYTES,
    runner: Runner | None = None,
) -> SpeedupRow:
    return run(
        ExperimentOptions(cipher=cipher, session_bytes=session_bytes),
        runner=runner,
    )[0]


def figure10(
    session_bytes: int = DEFAULT_SESSION_BYTES,
    ciphers: tuple[str, ...] = KERNEL_NAMES,
    *,
    runner: Runner | None = None,
) -> list[SpeedupRow]:
    return run(default_options(session_bytes, ciphers), runner=runner)


@dataclass
class SpeedupSummary(Row):
    """Section 6 headline aggregates (geometric means over the suite)."""

    mean_opt_vs_rot: float     # paper: 1.59 (59% speedup)
    mean_opt_vs_norot: float   # paper: 1.74 (74% speedup)


def summary(rows: list[SpeedupRow]) -> SpeedupSummary:
    def geomean(values: list[float]) -> float:
        product = 1.0
        for value in values:
            product *= value
        return product ** (1.0 / len(values))

    vs_rot = geomean([row.opt_4w for row in rows])
    # Against the no-rotate baseline: opt speedup / norot slowdown.
    vs_norot = geomean([row.opt_4w / row.orig_4w for row in rows])
    return SpeedupSummary(mean_opt_vs_rot=vs_rot, mean_opt_vs_norot=vs_norot)


def render_figure10(rows: list[SpeedupRow]) -> str:
    lines = [
        "Figure 10: Optimized Kernel Speedups (vs orig-with-rotates on 4W)",
        f"{'Cipher':<10}" + "".join(f"{bar:>10}" for bar in BARS),
    ]
    for row in rows:
        cells = "".join(f"{row.bar(bar):>10.2f}" for bar in BARS)
        lines.append(f"{row.cipher:<10}{cells}")
    agg = summary(rows)
    lines.append(
        f"mean Opt/4W speedup vs rot baseline: "
        f"{(agg.mean_opt_vs_rot - 1) * 100:.0f}%  (paper: 59%)"
    )
    lines.append(
        f"mean Opt/4W speedup vs no-rotate baseline: "
        f"{(agg.mean_opt_vs_norot - 1) * 100:.0f}%  (paper: 74%)"
    )
    return "\n".join(lines)
