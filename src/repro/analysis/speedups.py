"""Figure 10: relative performance of the optimized kernels.

Five bars per cipher, each a speedup in total cycles for a session,
normalized to the original code *with rotates* on the 4W machine:

* ``Orig/4W``  -- original code without rotate instructions on 4W
  (shows the penalty of an ISA lacking rotates; < 1.0),
* ``Opt/4W``   -- the fully optimized kernel on 4W,
* ``Opt/4W+``  -- plus SBox caches and extra rotator units,
* ``Opt/8W+``  -- double execution bandwidth,
* ``Opt/DF``   -- the optimized kernel on the dataflow machine.

The section 6 headline numbers -- mean optimized speedup versus the
rotate baseline and versus the no-rotate baseline -- fall out of the same
measurements (:func:`summary`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa import Features
from repro.kernels import KERNEL_NAMES, make_kernel
from repro.sim import DATAFLOW, EIGHTW_PLUS, FOURW, FOURW_PLUS, simulate

DEFAULT_SESSION_BYTES = 1024

BARS = ("orig/4W", "opt/4W", "opt/4W+", "opt/8W+", "opt/DF")


@dataclass
class SpeedupRow:
    cipher: str
    baseline_cycles: int            # orig-rot on 4W (the normalization)
    orig_4w: float                  # orig-norot on 4W
    opt_4w: float
    opt_4w_plus: float
    opt_8w_plus: float
    opt_dataflow: float

    def bar(self, name: str) -> float:
        return {
            "orig/4W": self.orig_4w,
            "opt/4W": self.opt_4w,
            "opt/4W+": self.opt_4w_plus,
            "opt/8W+": self.opt_8w_plus,
            "opt/DF": self.opt_dataflow,
        }[name]


def measure_cipher(name: str, session_bytes: int = DEFAULT_SESSION_BYTES) -> SpeedupRow:
    plaintext = bytes(i & 0xFF for i in range(session_bytes))

    rot_run = make_kernel(name, Features.ROT).encrypt(plaintext)
    norot_run = make_kernel(name, Features.NOROT).encrypt(plaintext)
    opt_run = make_kernel(name, Features.OPT).encrypt(plaintext)

    baseline = simulate(rot_run.trace, FOURW, rot_run.warm_ranges).cycles
    norot = simulate(norot_run.trace, FOURW, norot_run.warm_ranges).cycles
    opt_4w = simulate(opt_run.trace, FOURW, opt_run.warm_ranges).cycles
    opt_4wp = simulate(opt_run.trace, FOURW_PLUS, opt_run.warm_ranges).cycles
    opt_8wp = simulate(opt_run.trace, EIGHTW_PLUS, opt_run.warm_ranges).cycles
    opt_df = simulate(opt_run.trace, DATAFLOW, opt_run.warm_ranges).cycles

    return SpeedupRow(
        cipher=name,
        baseline_cycles=baseline,
        orig_4w=baseline / norot,
        opt_4w=baseline / opt_4w,
        opt_4w_plus=baseline / opt_4wp,
        opt_8w_plus=baseline / opt_8wp,
        opt_dataflow=baseline / opt_df,
    )


def figure10(
    session_bytes: int = DEFAULT_SESSION_BYTES,
    ciphers: tuple[str, ...] = KERNEL_NAMES,
) -> list[SpeedupRow]:
    return [measure_cipher(name, session_bytes) for name in ciphers]


@dataclass
class SpeedupSummary:
    """Section 6 headline aggregates (geometric means over the suite)."""

    mean_opt_vs_rot: float     # paper: 1.59 (59% speedup)
    mean_opt_vs_norot: float   # paper: 1.74 (74% speedup)


def summary(rows: list[SpeedupRow]) -> SpeedupSummary:
    def geomean(values: list[float]) -> float:
        product = 1.0
        for value in values:
            product *= value
        return product ** (1.0 / len(values))

    vs_rot = geomean([row.opt_4w for row in rows])
    # Against the no-rotate baseline: opt speedup / norot slowdown.
    vs_norot = geomean([row.opt_4w / row.orig_4w for row in rows])
    return SpeedupSummary(mean_opt_vs_rot=vs_rot, mean_opt_vs_norot=vs_norot)


def render_figure10(rows: list[SpeedupRow]) -> str:
    lines = [
        "Figure 10: Optimized Kernel Speedups (vs orig-with-rotates on 4W)",
        f"{'Cipher':<10}" + "".join(f"{bar:>10}" for bar in BARS),
    ]
    for row in rows:
        cells = "".join(f"{row.bar(bar):>10.2f}" for bar in BARS)
        lines.append(f"{row.cipher:<10}{cells}")
    agg = summary(rows)
    lines.append(
        f"mean Opt/4W speedup vs rot baseline: "
        f"{(agg.mean_opt_vs_rot - 1) * 100:.0f}%  (paper: 59%)"
    )
    lines.append(
        f"mean Opt/4W speedup vs no-rotate baseline: "
        f"{(agg.mean_opt_vs_norot - 1) * 100:.0f}%  (paper: 74%)"
    )
    return "\n".join(lines)
