"""RC6 block cipher (Rivest et al., 1998) -- RC6-32/20/16.

RC6 is the paper's canonical "computational" cipher: its diffusion comes from
32-bit modular multiplication (``x * (2x + 1)``, a power-of-two modulus, so a
plain MULL works) and *data-dependent rotates*.  It is the cipher most hurt
by an ISA without rotate instructions (24% slowdown in the paper's Figure 10)
and the one whose optimized kernel gains mostly from rotates alone.

The paper's Table 1 lists 18 rounds; the RC6 AES submission specifies 20, and
the zero-key test vector below only holds for 20, so we use the
specification's 20 rounds (the discrepancy is noted in EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.ciphers.base import BlockCipher, check_key_length
from repro.util.bits import MASK32, rotl32, rotr32

ROUNDS = 20
_P32 = 0xB7E15163
_Q32 = 0x9E3779B9
_LOG_W = 5


def expand_key(key: bytes) -> list[int]:
    """RC5/RC6 key schedule: 2*ROUNDS + 4 = 44 round-key words."""
    check_key_length("RC6", key, (16, 24, 32))
    c = len(key) // 4
    ell = [int.from_bytes(key[4 * i : 4 * i + 4], "little") for i in range(c)]
    t = 2 * ROUNDS + 4
    s = [(_P32 + i * _Q32) & MASK32 for i in range(t)]
    a = b = i = j = 0
    for _ in range(3 * max(c, t)):
        a = s[i] = rotl32((s[i] + a + b) & MASK32, 3)
        b = ell[j] = rotl32((ell[j] + a + b) & MASK32, (a + b) & 31)
        i = (i + 1) % t
        j = (j + 1) % c
    return s


class RC6(BlockCipher):
    """RC6 with w=32-bit words, 20 rounds, and a 16-byte key (per the paper)."""

    name = "RC6"
    block_size = 16

    def __init__(self, key: bytes):
        self._round_keys = expand_key(key)

    def encrypt_block(self, block: bytes) -> bytes:
        self._check_block(block)
        s = self._round_keys
        a, b, c, d = (
            int.from_bytes(block[4 * i : 4 * i + 4], "little") for i in range(4)
        )
        b = (b + s[0]) & MASK32
        d = (d + s[1]) & MASK32
        for i in range(1, ROUNDS + 1):
            t = rotl32((b * (2 * b + 1)) & MASK32, _LOG_W)
            u = rotl32((d * (2 * d + 1)) & MASK32, _LOG_W)
            a = (rotl32(a ^ t, u & 31) + s[2 * i]) & MASK32
            c = (rotl32(c ^ u, t & 31) + s[2 * i + 1]) & MASK32
            a, b, c, d = b, c, d, a
        a = (a + s[2 * ROUNDS + 2]) & MASK32
        c = (c + s[2 * ROUNDS + 3]) & MASK32
        return b"".join(v.to_bytes(4, "little") for v in (a, b, c, d))

    def decrypt_block(self, block: bytes) -> bytes:
        self._check_block(block)
        s = self._round_keys
        a, b, c, d = (
            int.from_bytes(block[4 * i : 4 * i + 4], "little") for i in range(4)
        )
        c = (c - s[2 * ROUNDS + 3]) & MASK32
        a = (a - s[2 * ROUNDS + 2]) & MASK32
        for i in range(ROUNDS, 0, -1):
            a, b, c, d = d, a, b, c
            u = rotl32((d * (2 * d + 1)) & MASK32, _LOG_W)
            t = rotl32((b * (2 * b + 1)) & MASK32, _LOG_W)
            c = rotr32((c - s[2 * i + 1]) & MASK32, t & 31) ^ u
            a = rotr32((a - s[2 * i]) & MASK32, u & 31) ^ t
        d = (d - s[1]) & MASK32
        b = (b - s[0]) & MASK32
        return b"".join(v.to_bytes(4, "little") for v in (a, b, c, d))
