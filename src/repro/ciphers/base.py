"""Common interfaces for the eight symmetric ciphers the paper studies.

Two kinds of cipher appear in the paper's benchmark suite:

* seven *block ciphers* (3DES, Blowfish, IDEA, MARS, RC6, Rijndael, Twofish)
  which encrypt fixed-size blocks and are run in chaining-block-cipher (CBC)
  mode, and
* one *stream cipher* (RC4), a key-based random number generator whose
  keystream is XOR'ed onto the data.

Key setup happens in ``__init__`` so that the setup-cost experiments
(paper Figure 6) have a clean boundary to instrument.
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class BlockCipher(ABC):
    """A keyed block cipher: encrypts/decrypts one ``block_size``-byte block."""

    #: Block size in bytes; subclasses override.
    block_size: int = 0
    #: Human-readable cipher name.
    name: str = ""

    @abstractmethod
    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one block of plaintext."""

    @abstractmethod
    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt exactly one block of ciphertext."""

    def _check_block(self, block: bytes) -> None:
        if len(block) != self.block_size:
            raise ValueError(
                f"{self.name}: block must be {self.block_size} bytes, "
                f"got {len(block)}"
            )


class StreamCipher(ABC):
    """A keyed stream cipher; encryption and decryption are the same XOR."""

    name: str = ""

    @abstractmethod
    def keystream(self, length: int) -> bytes:
        """Produce the next ``length`` keystream bytes (stateful)."""

    def process(self, data: bytes) -> bytes:
        """Encrypt or decrypt ``data`` by XOR with the keystream."""
        stream = self.keystream(len(data))
        return bytes(a ^ b for a, b in zip(data, stream))


def check_key_length(name: str, key: bytes, valid_lengths: tuple[int, ...]) -> None:
    """Raise ``ValueError`` unless ``key`` has one of ``valid_lengths`` bytes."""
    if len(key) not in valid_lengths:
        lengths = ", ".join(str(n) for n in valid_lengths)
        raise ValueError(f"{name}: key must be {lengths} bytes, got {len(key)}")
