"""Twofish block cipher (Schneier et al., 1998).

Twofish is the paper's running example (its kernel opens section 2): a
16-round Feistel network whose g-function applies four *key-dependent*
S-boxes followed by an MDS matrix multiply over GF(2^8), plus the
pseudo-Hadamard transform, 1-bit rotates, and key whitening.

The optimized software implementation the paper measured ("full keying")
precomputes the four key-dependent S-boxes fused with the MDS columns into
four 256 x 32-bit tables at setup time, reducing g() to four table lookups and
three XORs -- which is exactly what the RISC-A kernel does via SBOX
instructions.  :meth:`Twofish.fused_sboxes` exports those tables.

Configuration per the paper: 128-bit key, 128-bit block, 16 rounds.
"""

from __future__ import annotations

from repro.ciphers.base import BlockCipher, check_key_length
from repro.util.bits import MASK32, rotl32, rotr32
from repro.util.gf import GF2_8, TWOFISH_MDS_POLY, TWOFISH_RS_POLY

ROUNDS = 16

_MDS_FIELD = GF2_8(TWOFISH_MDS_POLY)
_RS_FIELD = GF2_8(TWOFISH_RS_POLY)

MDS = (
    (0x01, 0xEF, 0x5B, 0x5B),
    (0x5B, 0xEF, 0xEF, 0x01),
    (0xEF, 0x5B, 0x01, 0xEF),
    (0xEF, 0x01, 0xEF, 0x5B),
)

RS = (
    (0x01, 0xA4, 0x55, 0x87, 0x5A, 0x58, 0xDB, 0x9E),
    (0xA4, 0x56, 0x82, 0xF3, 0x1E, 0xC6, 0x68, 0xE5),
    (0x02, 0xA1, 0xFC, 0xC1, 0x47, 0xAE, 0x3D, 0x19),
    (0xA4, 0x55, 0x87, 0x5A, 0x58, 0xDB, 0x9E, 0x03),
)

# The fixed 4-bit permutations that build the q0/q1 byte permutations.
_Q0_T = (
    (0x8, 0x1, 0x7, 0xD, 0x6, 0xF, 0x3, 0x2, 0x0, 0xB, 0x5, 0x9, 0xE, 0xC, 0xA, 0x4),
    (0xE, 0xC, 0xB, 0x8, 0x1, 0x2, 0x3, 0x5, 0xF, 0x4, 0xA, 0x6, 0x7, 0x0, 0x9, 0xD),
    (0xB, 0xA, 0x5, 0xE, 0x6, 0xD, 0x9, 0x0, 0xC, 0x8, 0xF, 0x3, 0x2, 0x4, 0x7, 0x1),
    (0xD, 0x7, 0xF, 0x4, 0x1, 0x2, 0x6, 0xE, 0x9, 0xB, 0x3, 0x0, 0x8, 0x5, 0xC, 0xA),
)
_Q1_T = (
    (0x2, 0x8, 0xB, 0xD, 0xF, 0x7, 0x6, 0xE, 0x3, 0x1, 0x9, 0x4, 0x0, 0xA, 0xC, 0x5),
    (0x1, 0xE, 0x2, 0xB, 0x4, 0xC, 0x3, 0x7, 0x6, 0xD, 0xA, 0x5, 0xF, 0x9, 0x0, 0x8),
    (0x4, 0xC, 0x7, 0x5, 0x1, 0x6, 0x9, 0xA, 0x0, 0xE, 0xD, 0x8, 0x2, 0xB, 0x3, 0xF),
    (0xB, 0x9, 0x5, 0x1, 0xC, 0x3, 0xD, 0xE, 0x6, 0x4, 0x7, 0xF, 0x2, 0x0, 0x8, 0xA),
)


def _build_q(t: tuple[tuple[int, ...], ...]) -> tuple[int, ...]:
    """Construct a q permutation from its four 4-bit tables (spec section 4.3.5)."""
    table = []
    for x in range(256):
        a, b = x >> 4, x & 0xF
        a, b = a ^ b, (a ^ ((b >> 1) | ((b & 1) << 3)) ^ ((8 * a) & 0xF))
        a, b = t[0][a], t[1][b]
        a, b = a ^ b, (a ^ ((b >> 1) | ((b & 1) << 3)) ^ ((8 * a) & 0xF))
        a, b = t[2][a], t[3][b]
        table.append((b << 4) | a)
    return tuple(table)


Q0 = _build_q(_Q0_T)
Q1 = _build_q(_Q1_T)


def _mds_column(byte: int, column: int) -> int:
    """MDS * unit-vector column: the 32-bit word for input byte in position."""
    word = 0
    for row in range(4):
        word |= _MDS_FIELD.mul(MDS[row][column], byte) << (8 * row)
    return word


def h_function(x: int, key_words: tuple[int, ...]) -> int:
    """Twofish h: chained q-permutations keyed by ``key_words``, then MDS.

    ``key_words`` is (l0, l1) for a 128-bit key; longer keys prepend stages.
    """
    y = [(x >> (8 * i)) & 0xFF for i in range(4)]
    k = len(key_words)
    if k >= 4:
        b = key_words[3]
        y = [
            Q1[y[0]] ^ (b & 0xFF),
            Q0[y[1]] ^ ((b >> 8) & 0xFF),
            Q0[y[2]] ^ ((b >> 16) & 0xFF),
            Q1[y[3]] ^ ((b >> 24) & 0xFF),
        ]
    if k >= 3:
        b = key_words[2]
        y = [
            Q1[y[0]] ^ (b & 0xFF),
            Q1[y[1]] ^ ((b >> 8) & 0xFF),
            Q0[y[2]] ^ ((b >> 16) & 0xFF),
            Q0[y[3]] ^ ((b >> 24) & 0xFF),
        ]
    b1, b0 = key_words[1], key_words[0]
    y = [
        Q1[Q0[Q0[y[0]] ^ (b1 & 0xFF)] ^ (b0 & 0xFF)],
        Q0[Q0[Q1[y[1]] ^ ((b1 >> 8) & 0xFF)] ^ ((b0 >> 8) & 0xFF)],
        Q1[Q1[Q0[y[2]] ^ ((b1 >> 16) & 0xFF)] ^ ((b0 >> 16) & 0xFF)],
        Q0[Q1[Q1[y[3]] ^ ((b1 >> 24) & 0xFF)] ^ ((b0 >> 24) & 0xFF)],
    ]
    result = 0
    for column in range(4):
        result ^= _mds_column(y[column], column)
    return result


def _rs_encode(key_chunk: bytes) -> int:
    """RS matrix times 8 key bytes -> one 32-bit S-box key word."""
    word = 0
    for row in range(4):
        acc = 0
        for col in range(8):
            acc ^= _RS_FIELD.mul(RS[row][col], key_chunk[col])
        word |= acc << (8 * row)
    return word


class Twofish(BlockCipher):
    """Twofish-128 with full-keying precomputed S-box tables."""

    name = "Twofish"
    block_size = 16

    def __init__(self, key: bytes):
        check_key_length("Twofish", key, (16,))
        m = [int.from_bytes(key[4 * i : 4 * i + 4], "little") for i in range(4)]
        m_even = (m[0], m[2])
        m_odd = (m[1], m[3])
        rho = 0x01010101
        self.round_keys = []
        for i in range(20):
            a = h_function((2 * i * rho) & MASK32, m_even)
            b = rotl32(h_function(((2 * i + 1) * rho) & MASK32, m_odd), 8)
            self.round_keys.append((a + b) & MASK32)
            self.round_keys.append(rotl32((a + 2 * b) & MASK32, 9))
        # S-box key words, used in reverse chunk order.
        s_words = tuple(
            _rs_encode(key[8 * i : 8 * i + 8]) for i in range(len(key) // 8)
        )
        self._s_words = tuple(reversed(s_words))
        self._g_tables = self._build_fused_sboxes()

    def _build_fused_sboxes(self) -> list[list[int]]:
        """Precompute g() as four 256x32 tables (the "full keying" option)."""
        b1, b0 = self._s_words[1], self._s_words[0]
        tables = []
        spec = [
            (lambda x: Q1[Q0[Q0[x] ^ (b1 & 0xFF)] ^ (b0 & 0xFF)], 0),
            (lambda x: Q0[Q0[Q1[x] ^ ((b1 >> 8) & 0xFF)] ^ ((b0 >> 8) & 0xFF)], 1),
            (lambda x: Q1[Q1[Q0[x] ^ ((b1 >> 16) & 0xFF)] ^ ((b0 >> 16) & 0xFF)], 2),
            (lambda x: Q0[Q1[Q1[x] ^ ((b1 >> 24) & 0xFF)] ^ ((b0 >> 24) & 0xFF)], 3),
        ]
        for sbox_fn, column in spec:
            tables.append([_mds_column(sbox_fn(x), column) for x in range(256)])
        return tables

    def fused_sboxes(self) -> list[list[int]]:
        """The four key-dependent 256x32 g-tables, for the RISC-A kernel."""
        return [list(t) for t in self._g_tables]

    def g(self, x: int) -> int:
        t = self._g_tables
        return (
            t[0][x & 0xFF]
            ^ t[1][(x >> 8) & 0xFF]
            ^ t[2][(x >> 16) & 0xFF]
            ^ t[3][(x >> 24) & 0xFF]
        )

    def encrypt_block(self, block: bytes) -> bytes:
        self._check_block(block)
        k = self.round_keys
        r = [
            int.from_bytes(block[4 * i : 4 * i + 4], "little") ^ k[i]
            for i in range(4)
        ]
        for round_index in range(ROUNDS):
            t0 = self.g(r[0])
            t1 = self.g(rotl32(r[1], 8))
            f0 = (t0 + t1 + k[2 * round_index + 8]) & MASK32
            f1 = (t0 + 2 * t1 + k[2 * round_index + 9]) & MASK32
            r2 = rotr32(r[2] ^ f0, 1)
            r3 = rotl32(r[3], 1) ^ f1
            r = [r2, r3, r[0], r[1]]
        # Output whitening; the (i+2)%4 indexing undoes the last round's swap.
        out = bytearray()
        for i in range(4):
            out += ((r[(i + 2) % 4] ^ k[4 + i]) & MASK32).to_bytes(4, "little")
        return bytes(out)

    def decrypt_block(self, block: bytes) -> bytes:
        self._check_block(block)
        k = self.round_keys
        c = [
            int.from_bytes(block[4 * i : 4 * i + 4], "little") ^ k[4 + i]
            for i in range(4)
        ]
        # Invert the output whitening's swap-undoing index: R16_i = c[(i+2)%4].
        r = [c[2], c[3], c[0], c[1]]
        for round_index in range(ROUNDS - 1, -1, -1):
            a, b, cc, d = r
            t0 = self.g(cc)
            t1 = self.g(rotl32(d, 8))
            f0 = (t0 + t1 + k[2 * round_index + 8]) & MASK32
            f1 = (t0 + 2 * t1 + k[2 * round_index + 9]) & MASK32
            r = [cc, d, rotl32(a, 1) ^ f0, rotr32(b ^ f1, 1)]
        out = bytearray()
        for i in range(4):
            out += ((r[i] ^ k[i]) & MASK32).to_bytes(4, "little")
        return bytes(out)
