"""Block cipher modes of operation.

The paper runs every block cipher in chaining-block-cipher (CBC) mode: the
ciphertext of block *i* is XOR'ed with plaintext block *i+1* before that block
is encrypted.  CBC is what makes the cipher kernels one long recurrence with
essentially no inter-block parallelism (paper section 2), so using it is
essential for the performance experiments to be meaningful.

ECB mode is provided for test vectors and key-schedule validation only.
"""

from __future__ import annotations

from repro.ciphers.base import BlockCipher


def _check_data(mode: str, cipher: BlockCipher, data: bytes) -> None:
    if len(data) % cipher.block_size:
        raise ValueError(
            f"{mode}: data length {len(data)} is not a multiple of the "
            f"{cipher.block_size}-byte block size of {cipher.name}"
        )


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def ecb_encrypt(cipher: BlockCipher, plaintext: bytes) -> bytes:
    """Encrypt ``plaintext`` (a whole number of blocks) in ECB mode."""
    _check_data("ECB", cipher, plaintext)
    size = cipher.block_size
    return b"".join(
        cipher.encrypt_block(plaintext[i : i + size])
        for i in range(0, len(plaintext), size)
    )


def ecb_decrypt(cipher: BlockCipher, ciphertext: bytes) -> bytes:
    """Decrypt ``ciphertext`` (a whole number of blocks) in ECB mode."""
    _check_data("ECB", cipher, ciphertext)
    size = cipher.block_size
    return b"".join(
        cipher.decrypt_block(ciphertext[i : i + size])
        for i in range(0, len(ciphertext), size)
    )


class CBC:
    """Stateful CBC encryptor/decryptor around a block cipher.

    The intermediate vector (IV) persists across calls, matching the paper's
    session model where one IV chains an entire communication stream.
    """

    def __init__(self, cipher: BlockCipher, iv: bytes):
        if len(iv) != cipher.block_size:
            raise ValueError(
                f"CBC: IV must be {cipher.block_size} bytes, got {len(iv)}"
            )
        self.cipher = cipher
        self._encrypt_iv = iv
        self._decrypt_iv = iv

    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt a whole number of blocks, chaining from the previous call."""
        _check_data("CBC", self.cipher, plaintext)
        size = self.cipher.block_size
        chain = self._encrypt_iv
        out = bytearray()
        for i in range(0, len(plaintext), size):
            block = _xor_bytes(plaintext[i : i + size], chain)
            chain = self.cipher.encrypt_block(block)
            out += chain
        self._encrypt_iv = chain
        return bytes(out)

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Decrypt a whole number of blocks, chaining from the previous call."""
        _check_data("CBC", self.cipher, ciphertext)
        size = self.cipher.block_size
        chain = self._decrypt_iv
        out = bytearray()
        for i in range(0, len(ciphertext), size):
            block = ciphertext[i : i + size]
            out += _xor_bytes(self.cipher.decrypt_block(block), chain)
            chain = block
        self._decrypt_iv = chain
        return bytes(out)
