"""Triple DES (3DES-EDE3) as specified for SSL and measured by the paper.

3DES runs the DES kernel three times per 64-bit block
(encrypt-decrypt-encrypt with three independent keys), i.e. 48 rounds per
block -- the paper's slowest cipher by an order of magnitude and its headline
example: a 1 GHz processor running this kernel cannot saturate a T3 line.
"""

from __future__ import annotations

from repro.ciphers.base import BlockCipher, check_key_length
from repro.ciphers.des import DES


class TripleDES(BlockCipher):
    """3DES-EDE with a 24-byte key (three independent DES keys)."""

    name = "3DES"
    block_size = 8

    def __init__(self, key: bytes):
        check_key_length("3DES", key, (24,))
        self._des1 = DES(key[0:8])
        self._des2 = DES(key[8:16])
        self._des3 = DES(key[16:24])

    def encrypt_block(self, block: bytes) -> bytes:
        self._check_block(block)
        step1 = self._des1.encrypt_block(block)
        step2 = self._des2.decrypt_block(step1)
        return self._des3.encrypt_block(step2)

    def decrypt_block(self, block: bytes) -> bytes:
        self._check_block(block)
        step1 = self._des3.decrypt_block(block)
        step2 = self._des2.encrypt_block(step1)
        return self._des1.decrypt_block(step2)
