"""The paper's benchmark suite: cipher registry and Table 1 metadata.

Each entry captures the configuration row from the paper's Table 1 (key size,
block size, rounds per block) plus a factory that builds the reference cipher
with a correctly sized key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

from repro.ciphers.base import BlockCipher, StreamCipher
from repro.ciphers.blowfish import Blowfish
from repro.ciphers.des3 import TripleDES
from repro.ciphers.idea import IDEA
from repro.ciphers.mars import MARS
from repro.ciphers.rc4 import RC4
from repro.ciphers.rc6 import RC6
from repro.ciphers.rijndael import Rijndael
from repro.ciphers.twofish import Twofish

Cipher = Union[BlockCipher, StreamCipher]


@dataclass(frozen=True)
class CipherInfo:
    """One row of the paper's Table 1."""

    name: str
    key_bits: int
    block_bits: int
    rounds_per_block: int
    author: str
    example_application: str
    factory: Callable[[bytes], Cipher]
    is_stream: bool = False

    @property
    def key_bytes(self) -> int:
        return self.key_bits // 8

    @property
    def block_bytes(self) -> int:
        return self.block_bits // 8

    def make(self, key: bytes) -> Cipher:
        """Instantiate the reference cipher (key setup runs here)."""
        if len(key) != self.key_bytes:
            raise ValueError(
                f"{self.name}: suite configuration uses {self.key_bytes}-byte "
                f"keys, got {len(key)}"
            )
        return self.factory(key)


#: The eight ciphers of the paper's Table 1, in the paper's order.  The paper
#: lists 3DES's key size as 186 bits (3 x 62); we carry the full 3 x 64-bit
#: key material (168 effective bits), the SSL EDE3 configuration.  RC6 rounds
#: follow the AES submission (20); the paper's table prints 18.
SUITE: tuple[CipherInfo, ...] = (
    CipherInfo("3DES", 192, 64, 48, "CryptSoft", "SSL, SSH", TripleDES),
    CipherInfo("Blowfish", 128, 64, 16, "CryptSoft", "Norton Utilities", Blowfish),
    CipherInfo("IDEA", 128, 64, 8, "Ascom", "PGP, SSH", IDEA),
    CipherInfo("Mars", 128, 128, 16, "IBM", "AES Candidate", MARS),
    CipherInfo("RC4", 128, 8, 1, "CryptSoft", "SSL", RC4, is_stream=True),
    CipherInfo("RC6", 128, 128, 20, "RSA Security", "AES Candidate", RC6),
    CipherInfo("Rijndael", 128, 128, 10, "Rijmen", "AES Candidate", Rijndael),
    CipherInfo("Twofish", 128, 128, 16, "Counterpane", "AES Candidate", Twofish),
)

SUITE_BY_NAME: dict[str, CipherInfo] = {info.name: info for info in SUITE}


def get_cipher_info(name: str) -> CipherInfo:
    """Look up a suite entry by name (case-insensitive)."""
    for info in SUITE:
        if info.name.lower() == name.lower():
            return info
    raise KeyError(f"unknown cipher {name!r}; suite has {[c.name for c in SUITE]}")
