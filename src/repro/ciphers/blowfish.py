"""Blowfish block cipher (Schneier, 1993).

A 16-round Feistel cipher whose F-function is four 256-entry 32-bit S-box
lookups combined with adds and an XOR -- the canonical "substitution-heavy"
cipher in the paper's taxonomy (Figure 7).

Blowfish is also the paper's key-setup outlier (Figure 6): initializing the
P-array and S-boxes runs the encryption kernel 521 times, the cost of
encrypting ~8 KB of data, so setup overhead only drops below 10% for sessions
longer than 64 KB.

The P-array and S-boxes are initialized from the fractional hexadecimal
digits of pi, which this repository computes from scratch (``repro.util.pi``).
"""

from __future__ import annotations

from repro.ciphers.base import BlockCipher
from repro.util.pi import pi_hex_words

ROUNDS = 16
_NUM_P = ROUNDS + 2
_NUM_S_WORDS = 4 * 256


def _initial_tables() -> tuple[list[int], list[list[int]]]:
    words = pi_hex_words(_NUM_P + _NUM_S_WORDS)
    p_array = words[:_NUM_P]
    sboxes = [
        words[_NUM_P + 256 * i : _NUM_P + 256 * (i + 1)] for i in range(4)
    ]
    return p_array, sboxes


class Blowfish(BlockCipher):
    """Blowfish with a 1..56-byte key (the paper uses 128 bits)."""

    name = "Blowfish"
    block_size = 8

    def __init__(self, key: bytes):
        if not 1 <= len(key) <= 56:
            raise ValueError(f"Blowfish: key must be 1..56 bytes, got {len(key)}")
        self.p_array, self.sboxes = _initial_tables()
        self._setup(key)

    def _setup(self, key: bytes) -> None:
        # XOR the key cyclically into the P-array.
        key_words = [
            int.from_bytes(
                bytes(key[(4 * i + j) % len(key)] for j in range(4)), "big"
            )
            for i in range(_NUM_P)
        ]
        for i in range(_NUM_P):
            self.p_array[i] ^= key_words[i]
        # Repeatedly encrypt the (initially zero) chaining value to fill
        # P and the S-boxes: (18 + 1024) / 2 = 521 kernel runs.
        left = right = 0
        for i in range(0, _NUM_P, 2):
            left, right = self._encrypt_words(left, right)
            self.p_array[i] = left
            self.p_array[i + 1] = right
        for sbox in self.sboxes:
            for i in range(0, 256, 2):
                left, right = self._encrypt_words(left, right)
                sbox[i] = left
                sbox[i + 1] = right

    def _feistel(self, value: int) -> int:
        s0, s1, s2, s3 = self.sboxes
        a = (value >> 24) & 0xFF
        b = (value >> 16) & 0xFF
        c = (value >> 8) & 0xFF
        d = value & 0xFF
        return ((((s0[a] + s1[b]) & 0xFFFFFFFF) ^ s2[c]) + s3[d]) & 0xFFFFFFFF

    def _encrypt_words(self, left: int, right: int) -> tuple[int, int]:
        p = self.p_array
        for i in range(ROUNDS):
            left ^= p[i]
            right ^= self._feistel(left)
            left, right = right, left
        left, right = right, left  # undo final swap
        right ^= p[ROUNDS]
        left ^= p[ROUNDS + 1]
        return left, right

    def _decrypt_words(self, left: int, right: int) -> tuple[int, int]:
        p = self.p_array
        for i in range(ROUNDS + 1, 1, -1):
            left ^= p[i]
            right ^= self._feistel(left)
            left, right = right, left
        left, right = right, left
        right ^= p[1]
        left ^= p[0]
        return left, right

    def encrypt_block(self, block: bytes) -> bytes:
        self._check_block(block)
        left = int.from_bytes(block[:4], "big")
        right = int.from_bytes(block[4:], "big")
        left, right = self._encrypt_words(left, right)
        return left.to_bytes(4, "big") + right.to_bytes(4, "big")

    def decrypt_block(self, block: bytes) -> bytes:
        self._check_block(block)
        left = int.from_bytes(block[:4], "big")
        right = int.from_bytes(block[4:], "big")
        left, right = self._decrypt_words(left, right)
        return left.to_bytes(4, "big") + right.to_bytes(4, "big")
