"""Rijndael (AES) block cipher (Daemen & Rijmen, 1998).

Rijndael was the fastest AES candidate in the paper's baseline study
(48.51 bytes/1000 cycles) and nearly doubled in speed with hardware SBOX
support, because the optimized 32-bit software implementation -- the one the
paper measured, and the one our RISC-A kernel mirrors -- reduces each round to
sixteen T-table lookups plus XORs.  The four 256 x 32-bit T-tables combine
SubBytes, ShiftRows and MixColumns.

All tables are derived from first principles (GF(2^8) inversion plus the
affine map), not embedded as blobs; the FIPS-197 test vector pins correctness.

Configuration per the paper: 128-bit key, 128-bit block, 10 rounds.
"""

from __future__ import annotations

from functools import lru_cache

from repro.ciphers.base import BlockCipher, check_key_length
from repro.util.bits import rotl32
from repro.util.gf import GF2_8, RIJNDAEL_POLY

ROUNDS = 10
_FIELD = GF2_8(RIJNDAEL_POLY)


@lru_cache(maxsize=1)
def sbox() -> tuple[int, ...]:
    """The Rijndael S-box: GF(2^8) inverse followed by the affine transform."""
    table = []
    for x in range(256):
        inv = _FIELD.inverse(x)
        y = 0
        for bit in range(8):
            b = (
                (inv >> bit)
                ^ (inv >> ((bit + 4) % 8))
                ^ (inv >> ((bit + 5) % 8))
                ^ (inv >> ((bit + 6) % 8))
                ^ (inv >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            y |= b << bit
        table.append(y)
    return tuple(table)


@lru_cache(maxsize=1)
def inv_sbox() -> tuple[int, ...]:
    forward = sbox()
    table = [0] * 256
    for x, y in enumerate(forward):
        table[y] = x
    return tuple(table)


@lru_cache(maxsize=1)
def t_tables() -> tuple[tuple[int, ...], ...]:
    """Forward T-tables: T0[x] = (2s, s, s, 3s); T1..T3 are byte rotations.

    Column words are big-endian (byte 0 of the state column in the most
    significant byte), matching the reference 32-bit implementation.
    """
    s = sbox()
    t0 = []
    for x in range(256):
        sub = s[x]
        t0.append(
            (_FIELD.mul(2, sub) << 24)
            | (sub << 16)
            | (sub << 8)
            | _FIELD.mul(3, sub)
        )
    tables = [tuple(t0)]
    for i in range(1, 4):
        tables.append(tuple(rotl32(v, 32 - 8 * i) for v in t0))
    return tuple(tables)


@lru_cache(maxsize=1)
def inv_t_tables() -> tuple[tuple[int, ...], ...]:
    """Inverse T-tables combining InvSubBytes and InvMixColumns."""
    s_inv = inv_sbox()
    t0 = []
    for x in range(256):
        sub = s_inv[x]
        t0.append(
            (_FIELD.mul(0x0E, sub) << 24)
            | (_FIELD.mul(0x09, sub) << 16)
            | (_FIELD.mul(0x0D, sub) << 8)
            | _FIELD.mul(0x0B, sub)
        )
    tables = [tuple(t0)]
    for i in range(1, 4):
        tables.append(tuple(rotl32(v, 32 - 8 * i) for v in t0))
    return tuple(tables)


def expand_key(key: bytes) -> list[int]:
    """FIPS-197 key expansion: 44 32-bit round-key words for AES-128."""
    check_key_length("Rijndael", key, (16,))
    s = sbox()
    words = [int.from_bytes(key[4 * i : 4 * i + 4], "big") for i in range(4)]
    rcon = 1
    for i in range(4, 4 * (ROUNDS + 1)):
        temp = words[i - 1]
        if i % 4 == 0:
            temp = rotl32(temp, 8)
            temp = (
                (s[(temp >> 24) & 0xFF] << 24)
                | (s[(temp >> 16) & 0xFF] << 16)
                | (s[(temp >> 8) & 0xFF] << 8)
                | s[temp & 0xFF]
            )
            temp ^= rcon << 24
            rcon = _FIELD.mul(rcon, 2)
        words.append(words[i - 4] ^ temp)
    return words


def inv_expand_key(round_keys: list[int]) -> list[int]:
    """Decryption round keys for the equivalent-inverse-cipher T-table form.

    Round keys are reversed per round, and the inner rounds' keys are passed
    through InvMixColumns so decryption can use the same T-table structure as
    encryption.
    """
    inv_t = inv_t_tables()
    s = sbox()

    def inv_mix(word: int) -> int:
        # InvMixColumns(word) = IT0[S^-1 is folded into IT] -- apply via
        # IT tables on SubBytes'd bytes: ITx[S[b]] has InvMix(InvSub(S(b)))
        # = InvMix(b), the standard trick.
        return (
            inv_t[0][s[(word >> 24) & 0xFF]]
            ^ inv_t[1][s[(word >> 16) & 0xFF]]
            ^ inv_t[2][s[(word >> 8) & 0xFF]]
            ^ inv_t[3][s[word & 0xFF]]
        )

    out = []
    for round_index in range(ROUNDS + 1):
        src = 4 * (ROUNDS - round_index)
        quad = round_keys[src : src + 4]
        if 0 < round_index < ROUNDS:
            quad = [inv_mix(w) for w in quad]
        out.extend(quad)
    return out


def _crypt(
    block: bytes,
    round_keys: list[int],
    tables: tuple[tuple[int, ...], ...],
    final_sbox: tuple[int, ...],
    shift_direction: int,
) -> bytes:
    """Shared 10-round T-table kernel for encryption and decryption.

    ``shift_direction`` is +1 for ShiftRows (encrypt) and -1 for InvShiftRows
    (decrypt); it selects which state column each row byte is drawn from.
    """
    s0, s1, s2, s3 = (
        int.from_bytes(block[4 * i : 4 * i + 4], "big") ^ round_keys[i]
        for i in range(4)
    )
    t0, t1, t2, t3 = tables
    state = [s0, s1, s2, s3]
    k = 4
    for _ in range(ROUNDS - 1):
        new_state = []
        for col in range(4):
            new_state.append(
                t0[(state[col] >> 24) & 0xFF]
                ^ t1[(state[(col + shift_direction) % 4] >> 16) & 0xFF]
                ^ t2[(state[(col + 2 * shift_direction) % 4] >> 8) & 0xFF]
                ^ t3[state[(col + 3 * shift_direction) % 4] & 0xFF]
                ^ round_keys[k + col]
            )
        state = new_state
        k += 4
    out = bytearray()
    for col in range(4):
        word = (
            (final_sbox[(state[col] >> 24) & 0xFF] << 24)
            | (final_sbox[(state[(col + shift_direction) % 4] >> 16) & 0xFF] << 16)
            | (final_sbox[(state[(col + 2 * shift_direction) % 4] >> 8) & 0xFF] << 8)
            | final_sbox[state[(col + 3 * shift_direction) % 4] & 0xFF]
        )
        out += (word ^ round_keys[k + col]).to_bytes(4, "big")
    return bytes(out)


class Rijndael(BlockCipher):
    """AES-128: 128-bit key, 128-bit block, 10 rounds, T-table kernel."""

    name = "Rijndael"
    block_size = 16

    def __init__(self, key: bytes):
        self._round_keys = expand_key(key)
        self._inv_round_keys = inv_expand_key(self._round_keys)

    def encrypt_block(self, block: bytes) -> bytes:
        self._check_block(block)
        return _crypt(block, self._round_keys, t_tables(), sbox(), 1)

    def decrypt_block(self, block: bytes) -> bytes:
        self._check_block(block)
        return _crypt(block, self._inv_round_keys, inv_t_tables(), inv_sbox(), -1)
