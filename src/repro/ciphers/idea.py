"""IDEA block cipher (Lai & Massey, 1991).

IDEA mixes three incompatible group operations on 16-bit words:

* XOR,
* addition mod 2^16, and
* multiplication mod 2^16 + 1, where the all-zero word represents 2^16.

The multiply is the paper's motivation for the MULMOD instruction: IDEA's
kernel is dominated by these multiplies (7-cycle integer multiplies plus
correction code in the baseline), and the paper's biggest optimized-kernel
speedup (159%) comes from a 4-cycle hardware MULMOD.

Configuration per the paper: 128-bit key, 64-bit block, 8 rounds plus the
output transformation.
"""

from __future__ import annotations

from repro.ciphers.base import BlockCipher, check_key_length

ROUNDS = 8


def mul_mod(a: int, b: int) -> int:
    """IDEA multiplication: a*b mod 0x10001 with 0 interpreted as 2^16.

    This is exactly the operation the MULMOD instruction implements in
    hardware (paper Figure 8); the software low-high decomposition of it is
    what the baseline IDEA kernel runs.
    """
    if a == 0:
        a = 0x10000
    if b == 0:
        b = 0x10000
    product = (a * b) % 0x10001
    return product & 0xFFFF


def add_mod(a: int, b: int) -> int:
    """Addition mod 2^16."""
    return (a + b) & 0xFFFF


def _mul_inverse(a: int) -> int:
    """Multiplicative inverse in the IDEA group (0 represents 2^16)."""
    if a == 0:
        return 0  # 2^16 is its own inverse mod 2^16+1
    value = a
    return pow(value, 0x10001 - 2, 0x10001) & 0xFFFF


def _add_inverse(a: int) -> int:
    """Additive inverse mod 2^16."""
    return (-a) & 0xFFFF


def expand_key(key: bytes) -> list[int]:
    """Expand a 128-bit key into the 52 16-bit encryption subkeys.

    The first eight subkeys are the key itself; the key is then rotated left
    by 25 bits for each further batch of eight.
    """
    check_key_length("IDEA", key, (16,))
    value = int.from_bytes(key, "big")
    subkeys = []
    while len(subkeys) < 52:
        for i in range(8):
            if len(subkeys) == 52:
                break
            subkeys.append((value >> (112 - 16 * i)) & 0xFFFF)
        value = ((value << 25) | (value >> 103)) & ((1 << 128) - 1)
    return subkeys


def invert_key(subkeys: list[int]) -> list[int]:
    """Derive the 52 decryption subkeys from the encryption subkeys."""
    inv = [0] * 52
    # Output transform of decryption mirrors round 1 keys, and so on.
    for round_index in range(ROUNDS + 1):
        src = 6 * (ROUNDS - round_index)
        dst = 6 * round_index
        inv[dst] = _mul_inverse(subkeys[src])
        inv[dst + 3] = _mul_inverse(subkeys[src + 3])
        if round_index in (0, ROUNDS):
            inv[dst + 1] = _add_inverse(subkeys[src + 1])
            inv[dst + 2] = _add_inverse(subkeys[src + 2])
        else:
            # Middle rounds swap the two addition subkeys.
            inv[dst + 1] = _add_inverse(subkeys[src + 2])
            inv[dst + 2] = _add_inverse(subkeys[src + 1])
        if round_index < ROUNDS:
            inv[dst + 4] = subkeys[src - 2]
            inv[dst + 5] = subkeys[src - 1]
    return inv


def crypt_block(block: bytes, subkeys: list[int]) -> bytes:
    """Run the IDEA kernel (8 rounds + output transform) with ``subkeys``."""
    x1, x2, x3, x4 = (
        int.from_bytes(block[i : i + 2], "big") for i in (0, 2, 4, 6)
    )
    k = 0
    for _ in range(ROUNDS):
        x1 = mul_mod(x1, subkeys[k])
        x2 = add_mod(x2, subkeys[k + 1])
        x3 = add_mod(x3, subkeys[k + 2])
        x4 = mul_mod(x4, subkeys[k + 3])
        t0 = x1 ^ x3
        t1 = x2 ^ x4
        t0 = mul_mod(t0, subkeys[k + 4])
        t1 = add_mod(t1, t0)
        t1 = mul_mod(t1, subkeys[k + 5])
        t0 = add_mod(t0, t1)
        x1 ^= t1
        x4 ^= t0
        x2, x3 = x3 ^ t1, x2 ^ t0
        k += 6
    # Output transform (note x2/x3 swap back).
    y1 = mul_mod(x1, subkeys[k])
    y2 = add_mod(x3, subkeys[k + 1])
    y3 = add_mod(x2, subkeys[k + 2])
    y4 = mul_mod(x4, subkeys[k + 3])
    return b"".join(v.to_bytes(2, "big") for v in (y1, y2, y3, y4))


class IDEA(BlockCipher):
    """IDEA with a 128-bit key and 64-bit block."""

    name = "IDEA"
    block_size = 8

    def __init__(self, key: bytes):
        self._encrypt_keys = expand_key(key)
        self._decrypt_keys = invert_key(self._encrypt_keys)

    def encrypt_block(self, block: bytes) -> bytes:
        self._check_block(block)
        return crypt_block(block, self._encrypt_keys)

    def decrypt_block(self, block: bytes) -> bytes:
        self._check_block(block)
        return crypt_block(block, self._decrypt_keys)
