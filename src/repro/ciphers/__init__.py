"""Reference implementations of the paper's eight symmetric-key ciphers."""

from repro.ciphers.base import BlockCipher, StreamCipher
from repro.ciphers.blowfish import Blowfish
from repro.ciphers.des import DES
from repro.ciphers.des3 import TripleDES
from repro.ciphers.idea import IDEA
from repro.ciphers.mars import MARS
from repro.ciphers.modes import CBC, ecb_decrypt, ecb_encrypt
from repro.ciphers.rc4 import RC4
from repro.ciphers.rc6 import RC6
from repro.ciphers.rijndael import Rijndael
from repro.ciphers.suite import SUITE, SUITE_BY_NAME, CipherInfo, get_cipher_info
from repro.ciphers.twofish import Twofish

__all__ = [
    "BlockCipher",
    "StreamCipher",
    "Blowfish",
    "DES",
    "TripleDES",
    "IDEA",
    "MARS",
    "CBC",
    "ecb_decrypt",
    "ecb_encrypt",
    "RC4",
    "RC6",
    "Rijndael",
    "Twofish",
    "SUITE",
    "SUITE_BY_NAME",
    "CipherInfo",
    "get_cipher_info",
]
