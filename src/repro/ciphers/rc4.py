"""RC4 stream cipher (Rivest, 1987; public description 1994).

RC4 is the one stream cipher in the paper's suite and its performance
outlier: the keystream generator's iterations are (mostly) independent, so it
is the only cipher with substantial instruction-level parallelism.  It is also
the only cipher that *stores into* its S-box inside the kernel, which is why
the paper's SBOX instruction grew an ``aliased`` bit.

The paper configures RC4 with a 128-bit key and counts one keystream byte as
one "round" over an 8-bit "block".
"""

from __future__ import annotations

from repro.ciphers.base import StreamCipher


class RC4(StreamCipher):
    """RC4 with the standard 256-byte state and key-scheduling algorithm."""

    name = "RC4"

    def __init__(self, key: bytes):
        if not 1 <= len(key) <= 256:
            raise ValueError(f"RC4: key must be 1..256 bytes, got {len(key)}")
        state = list(range(256))
        j = 0
        for i in range(256):
            j = (j + state[i] + key[i % len(key)]) & 0xFF
            state[i], state[j] = state[j], state[i]
        self._state = state
        self._i = 0
        self._j = 0

    def keystream(self, length: int) -> bytes:
        state = self._state
        i, j = self._i, self._j
        out = bytearray(length)
        for n in range(length):
            i = (i + 1) & 0xFF
            j = (j + state[i]) & 0xFF
            state[i], state[j] = state[j], state[i]
            out[n] = state[(state[i] + state[j]) & 0xFF]
        self._i, self._j = i, j
        return bytes(out)
