"""Shared low-level utilities: bit manipulation, GF(2^8) math, pi digits."""

from repro.util.bits import (
    MASK8,
    MASK16,
    MASK32,
    MASK64,
    bytes_to_words_be,
    bytes_to_words_le,
    rotl32,
    rotl64,
    rotr32,
    rotr64,
    sign_extend,
    words_to_bytes_be,
    words_to_bytes_le,
)
from repro.util.gf import GF2_8, gf_mul
from repro.util.pi import pi_hex_words

__all__ = [
    "MASK8",
    "MASK16",
    "MASK32",
    "MASK64",
    "bytes_to_words_be",
    "bytes_to_words_le",
    "rotl32",
    "rotl64",
    "rotr32",
    "rotr64",
    "sign_extend",
    "words_to_bytes_be",
    "words_to_bytes_le",
    "GF2_8",
    "gf_mul",
    "pi_hex_words",
]
