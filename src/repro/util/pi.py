"""Hexadecimal digits of pi, computed from scratch with integer arithmetic.

Blowfish initializes its P-array and S-boxes from the fractional hexadecimal
digits of pi (a classic "nothing up my sleeve" constant source).  This module
computes those digits locally -- the repository has no network access and ships
no constant blobs -- using Machin's formula

    pi = 16*atan(1/5) - 4*atan(1/239)

evaluated with scaled big-integer arithmetic.  The same digit stream (at a
disjoint offset) seeds this repository's documented substitute for the MARS
S-box (see DESIGN.md, substitution #4).
"""

from __future__ import annotations

from functools import lru_cache

_GUARD_HEX_DIGITS = 12


def _atan_inv(x: int, one: int) -> int:
    """Return ``atan(1/x) * one`` for integer ``x > 1``, by Taylor series."""
    power = one // x
    total = power
    x_squared = x * x
    divisor = 1
    sign = -1
    while power:
        power //= x_squared
        divisor += 2
        total += sign * (power // divisor)
        sign = -sign
    return total


@lru_cache(maxsize=8)
def _pi_fraction_hex(num_digits: int) -> str:
    """Return the first ``num_digits`` hex digits of pi's fractional part."""
    scale_digits = num_digits + _GUARD_HEX_DIGITS
    one = 1 << (4 * scale_digits)
    pi_scaled = 16 * _atan_inv(5, one) - 4 * _atan_inv(239, one)
    fraction = pi_scaled - 3 * one
    if not 0 < fraction < one:
        raise AssertionError("pi computation out of range")
    hex_digits = format(fraction, "x").zfill(scale_digits)
    return hex_digits[:num_digits]


def pi_hex_words(count: int, offset: int = 0) -> list[int]:
    """Return ``count`` 32-bit words of pi's fractional hex expansion.

    Word ``i`` packs fractional hex digits ``8*(offset+i) .. 8*(offset+i)+7``
    big-endian, so ``pi_hex_words(1)[0] == 0x243F6A88`` -- the first Blowfish
    P-array entry.
    """
    if count < 0 or offset < 0:
        raise ValueError("count and offset must be non-negative")
    digits = _pi_fraction_hex(8 * (offset + count))
    return [
        int(digits[8 * i : 8 * i + 8], 16) for i in range(offset, offset + count)
    ]
