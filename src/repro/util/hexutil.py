"""Small helpers for working with hex-encoded test vectors."""

from __future__ import annotations


def h2b(hex_string: str) -> bytes:
    """Convert a hex string (spaces/newlines allowed) to bytes."""
    return bytes.fromhex("".join(hex_string.split()))


def b2h(data: bytes) -> str:
    """Convert bytes to a lowercase hex string."""
    return data.hex()
