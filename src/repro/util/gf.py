"""Arithmetic in GF(2^8), parameterized by reduction polynomial.

Rijndael, Twofish's MDS matrix, and Twofish's RS code all multiply bytes in
GF(2^8) but each uses a different reduction polynomial:

* Rijndael: x^8 + x^4 + x^3 + x + 1            (0x11B)
* Twofish MDS: x^8 + x^6 + x^5 + x^3 + 1       (0x169)
* Twofish RS:  x^8 + x^6 + x^3 + x^2 + 1       (0x14D)
"""

from __future__ import annotations

RIJNDAEL_POLY = 0x11B
TWOFISH_MDS_POLY = 0x169
TWOFISH_RS_POLY = 0x14D


def gf_mul(a: int, b: int, poly: int = RIJNDAEL_POLY) -> int:
    """Multiply two field elements modulo ``poly`` (carry-less then reduce)."""
    result = 0
    a &= 0xFF
    b &= 0xFF
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if a & 0x100:
            a ^= poly
    return result & 0xFF


class GF2_8:
    """A GF(2^8) field with a fixed reduction polynomial.

    Provides multiplication, exponentiation and inversion, plus a full 256x256
    multiplication is deliberately *not* precomputed -- callers that need
    tables (Rijndael T-tables, Twofish MDS) build per-constant tables, which
    is how the optimized C implementations the paper measured work too.
    """

    def __init__(self, poly: int = RIJNDAEL_POLY):
        if not poly & 0x100:
            raise ValueError("reduction polynomial must be degree 8")
        self.poly = poly

    def mul(self, a: int, b: int) -> int:
        return gf_mul(a, b, self.poly)

    def pow(self, a: int, exponent: int) -> int:
        result = 1
        base = a & 0xFF
        while exponent:
            if exponent & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            exponent >>= 1
        return result

    def inverse(self, a: int) -> int:
        """Multiplicative inverse; by convention inverse(0) == 0."""
        if a == 0:
            return 0
        # The multiplicative group has order 255.
        return self.pow(a, 254)

    def mul_table(self, constant: int) -> list[int]:
        """Return the 256-entry table of ``constant * x`` for all bytes x."""
        return [self.mul(constant, x) for x in range(256)]
