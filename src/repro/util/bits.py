"""Fixed-width integer helpers used by ciphers, the ISA, and the simulator.

Python integers are unbounded, so every operation that models 8/16/32/64-bit
hardware arithmetic masks explicitly.  These helpers centralize the masking so
cipher and simulator code reads like the algorithm specifications.
"""

from __future__ import annotations

MASK8 = 0xFF
MASK16 = 0xFFFF
MASK32 = 0xFFFF_FFFF
MASK64 = 0xFFFF_FFFF_FFFF_FFFF


def rotl32(value: int, amount: int) -> int:
    """Rotate a 32-bit value left by ``amount`` bits (amount taken mod 32)."""
    amount &= 31
    value &= MASK32
    return ((value << amount) | (value >> (32 - amount))) & MASK32 if amount else value


def rotr32(value: int, amount: int) -> int:
    """Rotate a 32-bit value right by ``amount`` bits (amount taken mod 32)."""
    return rotl32(value, (32 - amount) & 31)


def rotl64(value: int, amount: int) -> int:
    """Rotate a 64-bit value left by ``amount`` bits (amount taken mod 64)."""
    amount &= 63
    value &= MASK64
    return ((value << amount) | (value >> (64 - amount))) & MASK64 if amount else value


def rotr64(value: int, amount: int) -> int:
    """Rotate a 64-bit value right by ``amount`` bits (amount taken mod 64)."""
    return rotl64(value, (64 - amount) & 63)


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low ``bits`` bits of ``value`` as a signed integer."""
    value &= (1 << bits) - 1
    sign_bit = 1 << (bits - 1)
    return value - (1 << bits) if value & sign_bit else value


def bytes_to_words_be(data: bytes, word_bytes: int = 4) -> list[int]:
    """Split ``data`` into big-endian words of ``word_bytes`` bytes each."""
    if len(data) % word_bytes:
        raise ValueError(f"data length {len(data)} not a multiple of {word_bytes}")
    return [
        int.from_bytes(data[i : i + word_bytes], "big")
        for i in range(0, len(data), word_bytes)
    ]


def words_to_bytes_be(words: list[int], word_bytes: int = 4) -> bytes:
    """Join words into bytes, big-endian."""
    return b"".join(w.to_bytes(word_bytes, "big") for w in words)


def bytes_to_words_le(data: bytes, word_bytes: int = 4) -> list[int]:
    """Split ``data`` into little-endian words of ``word_bytes`` bytes each."""
    if len(data) % word_bytes:
        raise ValueError(f"data length {len(data)} not a multiple of {word_bytes}")
    return [
        int.from_bytes(data[i : i + word_bytes], "little")
        for i in range(0, len(data), word_bytes)
    ]


def words_to_bytes_le(words: list[int], word_bytes: int = 4) -> bytes:
    """Join words into bytes, little-endian."""
    return b"".join(w.to_bytes(word_bytes, "little") for w in words)
