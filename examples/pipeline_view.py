#!/usr/bin/env python3
"""Watch a cipher round move through the pipeline (the paper's SimpleView).

Renders the per-instruction fetch/wait/execute/retire timeline for a slice
of the Twofish kernel on the 4W machine, then on the dataflow machine --
making the serial F-function dependence chain visible exactly the way the
paper's authors used SimpleView to find kernel bottlenecks.

Run:  python examples/pipeline_view.py [cipher]
"""

import sys

from repro import FOURW, DATAFLOW, Features, make_kernel, simulate
from repro.sim.pipeview import render_pipeline, stall_summary


def main() -> None:
    cipher = sys.argv[1] if len(sys.argv) > 1 else "Twofish"
    kernel = make_kernel(cipher, Features.OPT)
    run = kernel.encrypt(bytes(kernel.block_bytes * 8 or 64))

    # Pick a window in steady state (a second block, past warmup).
    start = len(run.trace) // 2
    window = (start, start + 28)

    for config in (FOURW, DATAFLOW):
        stats = simulate(run.trace, config, run.warm_ranges,
                         schedule_range=window)
        schedule = stats.extra["schedule"]
        print(f"=== {cipher} on {config.name} "
              f"(IPC {stats.ipc:.2f}) ===")
        print(render_pipeline(run.trace, schedule))
        summary = stall_summary(schedule)
        print(", ".join(f"{k}={v:.1f}" for k, v in summary.items()))
        print()


if __name__ == "__main__":
    main()
