#!/usr/bin/env python3
"""Secure web-server capacity planning with the paper's SSL session model.

Combines Figure 2's session cost model with the simulator's measured cipher
rates: how many SSL sessions per second can a 1 GHz server core sustain,
per cipher, before and after the ISA extensions -- and how the bottleneck
shifts from public-key to private-key work as pages grow.

Run:  python examples/secure_web_server.py
"""

from repro import FOURW, FOURW_PLUS, Features, make_kernel, simulate
from repro.analysis.ssl_model import SSLModelParams, breakdown, from_measured_rate

CLOCK_HZ = 1e9
PAGE_BYTES = 21 * 1024        # a typical 1999 web page object set (paper sec 1)
SAMPLE_SESSION = 1024


def measured_rate(name: str, features: Features, config) -> float:
    kernel = make_kernel(name, features)
    run = kernel.encrypt(bytes(i & 0xFF for i in range(SAMPLE_SESSION)))
    stats = simulate(run.trace, config, run.warm_ranges)
    return stats.bytes_per_kilocycle(SAMPLE_SESSION)


def sessions_per_second(params: SSLModelParams, page_bytes: int) -> float:
    total_cycles = (
        params.public_key_cycles
        + page_bytes * (params.private_per_byte + params.other_per_byte)
        + params.other_per_session
    )
    return CLOCK_HZ / total_cycles


def main() -> None:
    print(f"SSL capacity on a 1 GHz core, {PAGE_BYTES // 1024} KB pages\n")
    print(f"{'Cipher':<10} {'base sess/s':>12} {'opt sess/s':>12} "
          f"{'gain':>6}  priv-key share (base -> opt)")
    for name in ("3DES", "RC4", "Rijndael", "Twofish"):
        base_params = from_measured_rate(measured_rate(name, Features.ROT, FOURW))
        opt_params = from_measured_rate(
            measured_rate(name, Features.OPT, FOURW_PLUS)
        )
        base_sps = sessions_per_second(base_params, PAGE_BYTES)
        opt_sps = sessions_per_second(opt_params, PAGE_BYTES)
        base_share = breakdown(PAGE_BYTES, base_params).private_fraction
        opt_share = breakdown(PAGE_BYTES, opt_params).private_fraction
        print(
            f"{name:<10} {base_sps:>12.0f} {opt_sps:>12.0f} "
            f"{opt_sps / base_sps - 1:>6.0%}  "
            f"{base_share:.0%} -> {opt_share:.0%}"
        )

    print(
        "\nAs pages grow, private-key work dominates (paper Figure 2), so\n"
        "the symmetric-cipher ISA extensions translate directly into server\n"
        "session throughput."
    )


if __name__ == "__main__":
    main()
