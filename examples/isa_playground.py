#!/usr/bin/env python3
"""Write RISC-A assembly by hand and watch it run on the paper's machines.

A small diffusion loop written in textual assembly, executed functionally,
then timed on every machine model with a bottleneck decomposition -- the
workflow the paper used (via SimpleScalar + SimpleView) to find what slows
cipher kernels down.

Run:  python examples/isa_playground.py
"""

from repro import BASE4W, DATAFLOW, EIGHTW_PLUS, FOURW, Machine, Memory, assemble, simulate
from repro.sim import BOTTLENECKS, DATAFLOW_BASEISA, bottleneck_config

SOURCE = """
    ; a toy diffusion kernel: rotate-xor-multiply recurrence over a buffer
    ldiq  r1, 0x10000        ; input pointer
    ldiq  r2, 0x20000        ; output pointer
    ldiq  r3, 512            ; word count
    ldiq  r4, 0x9E3779B9     ; golden-ratio constant
    ldiq  r5, 0              ; chain
loop:
    ldl   r6, 0(r1)
    xor   r6, r6, r5         ; chain in
    roll  r7, r6, #13
    xor   r6, r6, r7
    mull  r6, r6, r4         ; diffuse
    roll  r7, r6, #7
    xor   r5, r6, r7         ; chain out
    stl   r5, 0(r2)
    addq  r1, r1, #4
    addq  r2, r2, #4
    subq  r3, r3, #1
    bne   r3, loop
    halt
"""


def main() -> None:
    program = assemble(SOURCE)
    print("Disassembly (first 12 instructions):")
    print("\n".join(program.listing().splitlines()[:14]))

    memory = Memory(1 << 18)
    memory.write_bytes(0x10000, bytes(range(256)) * 8)
    result = Machine(program, memory).execute()
    trace = result.trace
    print(f"\nExecuted {result.instructions} instructions; "
          f"output[0..8) = {memory.read_bytes(0x20000, 8).hex()}")

    print(f"\n{'Machine':<10} {'cycles':>8} {'IPC':>6}")
    for config in (BASE4W, FOURW, EIGHTW_PLUS, DATAFLOW):
        stats = simulate(trace, config)
        print(f"{config.name:<10} {stats.cycles:>8} {stats.ipc:>6.2f}")

    # The bottleneck study compares against the dataflow machine running the
    # *baseline* ISA's latencies (the Figure 5 methodology).
    dataflow_cycles = simulate(trace, DATAFLOW_BASEISA).cycles
    print("\nBottleneck decomposition (performance relative to dataflow):")
    for which in BOTTLENECKS:
        stats = simulate(trace, bottleneck_config(which))
        print(f"  {which:<8} {dataflow_cycles / stats.cycles:.3f}")


if __name__ == "__main__":
    main()
