#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation section.

Run:  python examples/paper_tables.py [--session 1024]

``--session 4096`` reproduces the paper's session length exactly (slower).
"""

from repro.analysis.report import main

if __name__ == "__main__":
    raise SystemExit(main())
