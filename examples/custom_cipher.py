#!/usr/bin/env python3
"""Bring your own cipher: XTEA on the paper's ISA extensions.

The paper argues its instruction-set support is *general* -- "possibly
offering performance improvements for yet-to-be-developed algorithms."
XTEA (Needham & Wheeler, 1997) is not in the paper's suite; this example
implements it twice --

1. a ~20-line Python reference, and
2. a RISC-A kernel through the public ``KernelBuilder`` API, coded at both
   the baseline and extended ISA levels --

validates the kernel against the reference, and measures what the
extensions buy a cipher the paper never saw.

Run:  python examples/custom_cipher.py
"""

from repro import FOURW, Features, KernelBuilder, Machine, Memory, simulate
from repro.isa import Imm

MASK32 = 0xFFFFFFFF
DELTA = 0x9E3779B9
ROUNDS = 32


# --- 1. Reference XTEA ------------------------------------------------------

def xtea_encrypt_block(block: bytes, key_words: list[int]) -> bytes:
    v0 = int.from_bytes(block[:4], "little")
    v1 = int.from_bytes(block[4:], "little")
    total = 0
    for _ in range(ROUNDS):
        v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1)
                    ^ (total + key_words[total & 3]))) & MASK32
        total = (total + DELTA) & MASK32
        v1 = (v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0)
                    ^ (total + key_words[(total >> 11) & 3]))) & MASK32
    return v0.to_bytes(4, "little") + v1.to_bytes(4, "little")


# --- 2. The same cipher as a RISC-A kernel ----------------------------------

KEY_BASE = 0x1000
INPUT_BASE = 0x2000
OUTPUT_BASE = 0x3000


def build_xtea_kernel(features: Features, nblocks: int):
    kb = KernelBuilder(features)
    in_ptr, out_ptr, count = kb.regs("in_ptr", "out_ptr", "count")
    key_base, v0, v1, total, t0, t1 = kb.regs(
        "key_base", "v0", "v1", "total", "t0", "t1"
    )
    kb.ldiq(in_ptr, INPUT_BASE)
    kb.ldiq(out_ptr, OUTPUT_BASE)
    kb.ldiq(count, nblocks)
    kb.ldiq(key_base, KEY_BASE)

    def half_round(dst, src, key_index_expr):
        # dst += (((src << 4) ^ (src >> 5)) + src) ^ (total + key[idx])
        kb.sll(t0, src, Imm(4))
        kb.srl(t1, src, Imm(5))
        kb.xor(t0, t0, t1)
        kb.addl(t0, t0, src)
        key_index_expr()             # leaves the key word in t1
        kb.addl(t1, t1, total)
        kb.xor(t0, t0, t1)
        kb.addl(dst, dst, t0)

    kb.label("block_loop")
    kb.ldl(v0, in_ptr, 0)
    kb.ldl(v1, in_ptr, 4)
    kb.ldiq(total, 0)
    for _ in range(ROUNDS):
        def key_low():
            kb.and_(t1, total, Imm(3))
            kb.s4addq(t1, t1, key_base)
            kb.ldl(t1, t1, 0)

        half_round(v0, v1, key_low)
        kb.ldiq(t1, DELTA)
        kb.addl(total, total, t1)

        def key_high():
            kb.srl(t1, total, Imm(11))
            kb.and_(t1, t1, Imm(3))
            kb.s4addq(t1, t1, key_base)
            kb.ldl(t1, t1, 0)

        half_round(v1, v0, key_high)
    kb.stl(v0, out_ptr, 0)
    kb.stl(v1, out_ptr, 4)
    kb.addq(in_ptr, in_ptr, Imm(8))
    kb.addq(out_ptr, out_ptr, Imm(8))
    kb.subq(count, count, Imm(1))
    kb.bne(count, "block_loop")
    kb.halt()
    return kb.build()


def main() -> None:
    key_words = [0x01020304, 0x05060708, 0x090A0B0C, 0x0D0E0F10]
    nblocks = 32
    plaintext = bytes((i * 7 + 3) & 0xFF for i in range(8 * nblocks))
    expected = b"".join(
        xtea_encrypt_block(plaintext[8 * i : 8 * i + 8], key_words)
        for i in range(nblocks)
    )

    for features in (Features.NOROT, Features.OPT):
        program = build_xtea_kernel(features, nblocks)
        memory = Memory(1 << 16)
        memory.write_words32(KEY_BASE, key_words)
        memory.write_bytes(INPUT_BASE, plaintext)
        result = Machine(program, memory).execute()
        assert memory.read_bytes(OUTPUT_BASE, len(plaintext)) == expected, \
            "kernel diverges from the reference!"
        stats = simulate(result.trace, FOURW)
        print(f"XTEA [{features.label:>10}]: validated; "
              f"{result.instructions} instructions, {stats.cycles} cycles, "
              f"{stats.bytes_per_kilocycle(len(plaintext)):.1f} bytes/1000cyc")

    print("\nXTEA is shift/xor/add only -- no S-boxes, no multiplies, no "
          "data-dependent rotates --\nso the extensions buy it nothing: "
          "exactly the generality boundary the paper draws.")


if __name__ == "__main__":
    main()
