#!/usr/bin/env python3
"""Quickstart: ciphers, kernels, and the simulator in ~40 lines.

Run:  python examples/quickstart.py
"""

from repro import FOURW, Features, make_kernel, simulate
from repro.ciphers import CBC, Twofish

# --- 1. Reference ciphers: ordinary Python crypto objects ----------------
key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
iv = bytes(16)
cipher = Twofish(key)
message = b"Sixteen byte msg" * 4

ciphertext = CBC(cipher, iv).encrypt(message)
recovered = CBC(Twofish(key), iv).decrypt(ciphertext)
assert recovered == message
print(f"Twofish-CBC: {len(message)} bytes -> {ciphertext[:16].hex()}...")

# --- 2. The same cipher as a RISC-A kernel on a simulated machine --------
# Features.ROT  = the paper's baseline ISA (with rotate instructions)
# Features.OPT  = the paper's crypto extensions (SBOX, ROLX, MULMOD, XBOX)
for features in (Features.ROT, Features.OPT):
    kernel = make_kernel("Twofish", features, key=key)
    run = kernel.encrypt(message, iv)          # validated against reference
    assert run.ciphertext == ciphertext
    stats = simulate(run.trace, FOURW, run.warm_ranges)
    print(
        f"[{features.label:>10}] {run.instructions:5d} instructions, "
        f"{stats.cycles:5d} cycles on {stats.config_name}, "
        f"IPC {stats.ipc:.2f}, "
        f"{stats.bytes_per_kilocycle(len(message)):.1f} bytes/1000cyc"
    )

print("\nOn a 1 GHz core, bytes/1000cyc is the MB/s encryption rate "
      "(paper, section 4.1).")
