#!/usr/bin/env python3
"""Can a 1 GHz processor saturate a T3 line?  (the paper's motivation)

The paper opens with the observation that a 600 MHz processor running 3DES
cannot saturate a T3 (45 Mb/s) communication line.  This example sizes a
VPN gateway: for each cipher, at baseline and with the proposed ISA
extensions, how much encrypted bandwidth does one 1 GHz core sustain, and
which common links can it fill?

Run:  python examples/vpn_gateway.py  [--session 1024]
"""

import argparse

from repro import FOURW, FOURW_PLUS, Features, make_kernel, simulate

LINKS = (
    ("T1 (1.5 Mb/s)", 1.544e6 / 8),
    ("T3 (45 Mb/s)", 44.736e6 / 8),
    ("100Mb Ethernet", 100e6 / 8),
    ("OC-12 (622 Mb/s)", 622e6 / 8),
)

CLOCK_HZ = 1e9


def gateway_rate(name: str, features: Features, config, session: int) -> float:
    """Sustained encryption rate in bytes/second on a 1 GHz core."""
    kernel = make_kernel(name, features)
    run = kernel.encrypt(bytes(i & 0xFF for i in range(session)))
    stats = simulate(run.trace, config, run.warm_ranges)
    return stats.bytes_per_kilocycle(session) / 1000.0 * CLOCK_HZ


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--session", type=int, default=1024)
    parser.add_argument(
        "--ciphers", nargs="*", default=["3DES", "RC4", "Rijndael", "Twofish"]
    )
    args = parser.parse_args()

    print(f"{'Cipher':<10} {'baseline MB/s':>14} {'optimized MB/s':>15}  links saturated")
    for name in args.ciphers:
        base = gateway_rate(name, Features.ROT, FOURW, args.session)
        opt = gateway_rate(name, Features.OPT, FOURW_PLUS, args.session)
        saturated = [label for label, rate in LINKS if opt >= rate]
        print(
            f"{name:<10} {base / 1e6:>14.1f} {opt / 1e6:>15.1f}  "
            f"{', '.join(saturated) if saturated else '(none)'}"
        )

    base_3des = gateway_rate("3DES", Features.ROT, FOURW, args.session)
    t3 = dict(LINKS)["T3 (45 Mb/s)"]
    verdict = "can" if base_3des >= t3 else "cannot"
    print(
        f"\nBaseline 3DES at 1 GHz: {base_3des / 1e6:.1f} MB/s -> "
        f"{verdict} saturate a T3 line "
        f"(paper: 7.32 MB/s, 'barely enough')."
    )


if __name__ == "__main__":
    main()
