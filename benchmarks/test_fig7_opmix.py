"""Figure 7 benchmark: kernel operation characterization.

Shape assertions from the paper: the suite splits into *computational*
ciphers (IDEA, RC6 -- multiply-heavy, no substitutions) and
*substitution* ciphers (Blowfish, 3DES, Rijndael, Twofish -- S-box
dominated); MARS and RC6 are the rotate-heavy kernels; only 3DES performs
general permutations.
"""

from conftest import run_once

from repro.analysis.opmix import figure7, render_figure7
from repro.isa import opcodes as op


def test_figure7(benchmark, session_bytes, show):
    rows = run_once(benchmark, figure7, session_bytes=min(session_bytes, 512))
    show(render_figure7(rows))
    by_name = {row.cipher: row for row in rows}

    # Computational ciphers: multiplies dominate, no substitutions.
    for name in ("IDEA", "RC6"):
        assert by_name[name].fraction(op.MULTIPLY) > 0.10, name
        assert by_name[name].fraction(op.SUBST) == 0.0, name

    # Substitution ciphers: S-box work is the biggest category.
    for name in ("Blowfish", "3DES", "Rijndael", "Twofish"):
        subst = by_name[name].fraction(op.SUBST)
        assert subst > 0.25, name
        assert by_name[name].fraction(op.MULTIPLY) < 0.05, name

    # Rotate-heavy kernels.
    assert by_name["Mars"].fraction(op.ROTATE) > 0.10
    assert by_name["RC6"].fraction(op.ROTATE) > 0.10
    # Rijndael and Blowfish use essentially no rotates.
    assert by_name["Rijndael"].fraction(op.ROTATE) < 0.02
    assert by_name["Blowfish"].fraction(op.ROTATE) < 0.02

    # Only 3DES performs general bit permutations.
    assert by_name["3DES"].fraction(op.PERMUTE) > 0.01
    for name in by_name:
        if name != "3DES":
            assert by_name[name].fraction(op.PERMUTE) == 0.0, name

    # Fractions sum to one.
    for row in rows:
        assert abs(sum(row.fraction(c) for c in
                       set(row.counts)) - 1.0) < 1e-9
