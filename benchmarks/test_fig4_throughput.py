"""Figure 4 benchmark: baseline cipher throughput (bytes / 1000 cycles).

Prints the regenerated figure and asserts the paper's qualitative shape:
3DES slowest by a wide margin, RC4 fastest with ~an order of magnitude over
3DES, Rijndael leading the AES candidates, and the serial ciphers running
close to dataflow speed while RC4/Rijndael leave large dataflow headroom.
"""

from conftest import run_once

from repro.analysis.throughput import figure4, render_figure4

AES_CANDIDATES = ("Mars", "RC6", "Rijndael", "Twofish")


def test_figure4(benchmark, session_bytes, show):
    rows = run_once(benchmark, figure4, session_bytes=session_bytes)
    show(render_figure4(rows))
    by_name = {row.cipher: row for row in rows}

    four_wide = {name: row.four_wide for name, row in by_name.items()}
    assert min(four_wide, key=four_wide.get) == "3DES"
    assert max(four_wide, key=four_wide.get) == "RC4"
    assert four_wide["RC4"] > 5 * four_wide["3DES"]

    best_aes = max(AES_CANDIDATES, key=lambda n: four_wide[n])
    assert best_aes == "Rijndael"

    # Dataflow bounds everything; serial ciphers run near it, parallel ones
    # leave big headroom (paper: RC4 and Rijndael are the outliers).
    for name, row in by_name.items():
        assert row.four_wide <= row.dataflow * 1.001
    for name in ("Blowfish", "IDEA", "RC6", "Mars"):
        assert by_name[name].four_wide >= 0.85 * by_name[name].dataflow
    for name in ("RC4", "Rijndael"):
        assert by_name[name].four_wide <= 0.75 * by_name[name].dataflow

    # The validation column tracks the detailed model (paper: within ~15%).
    for row in rows:
        assert row.alpha <= row.four_wide * 1.2
        assert row.alpha >= row.four_wide * 0.5
