"""Section 4.3 benchmark: the value-prediction study.

The paper's conclusion: diffusion destroys value locality, so value
speculation cannot accelerate cipher kernels (best edge: 6.3%).  The
reproduction's bar: mean diffusion-edge predictability in the low single
digits, best edges far below anything a value speculator could exploit,
with RC4's evolving S-box the least predictable of all.
"""

from conftest import run_once

from repro.analysis.value_prediction import render, study


def test_value_prediction(benchmark, session_bytes, show):
    rows = run_once(benchmark, study, session_bytes=min(session_bytes, 512))
    show(render(rows))
    by_name = {row.cipher: row for row in rows}

    for row in rows:
        assert row.mean_diffusion_hit_rate < 0.10, row.cipher
        assert row.best_diffusion_hit_rate < 0.40, row.cipher

    # RC4's keystream state is the least value-predictable kernel of all
    # (even its loop-overhead values evolve).
    assert by_name["RC4"].best_overall_hit_rate < 0.10
