"""Section 8 future-work benchmark: inter-session parallelism.

The paper closes by proposing cryptographic processors that use fine-grained
multithreading to extract parallelism *between* sessions, since one CBC
session is inherently serial.  This benchmark interleaves N independent
sessions on the 8W+ machine: aggregate throughput should scale well past a
single session's recurrence limit, saturating only at shared resources
(issue width, S-box bandwidth).
"""

from conftest import run_once

from repro.analysis import multisession

CIPHERS = ("3DES", "Blowfish", "Twofish", "RC6")
THREADS = (1, 2, 4, 8)


def _measure(session_bytes):
    return {
        name: multisession.measure(
            name, thread_counts=THREADS, session_bytes=session_bytes
        )
        for name in CIPHERS
    }


def test_inter_session_parallelism(benchmark, session_bytes, show):
    rows = run_once(benchmark, _measure, min(session_bytes, 256))
    show(multisession.render(rows))

    for name, cipher_rows in rows.items():
        by_threads = {row.threads: row for row in cipher_rows}
        # Two independent sessions always beat one (the recurrence breaks).
        assert by_threads[2].speedup_vs_one > 1.3, name
        # Scaling continues to 4 threads for every cipher.
        assert by_threads[4].speedup_vs_one > by_threads[2].speedup_vs_one, name
        # And never regresses catastrophically at 8 (shared-resource
        # saturation is expected; collapse is not).
        assert by_threads[8].speedup_vs_one > 1.5, name

    # The serial-recurrence ciphers scale superbly: at least one reaches 4x.
    best = max(rows[name][-1].speedup_vs_one for name in CIPHERS)
    assert best > 3.5
