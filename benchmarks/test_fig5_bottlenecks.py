"""Figure 5 benchmark: per-bottleneck analysis relative to dataflow.

Shape assertions from the paper: branch prediction and the memory system
impair *no* cipher; the window matters to none of the block ciphers; RC4 is
uniquely sensitive to conservative load/store alias handling; issue width
and functional-unit resources are the common bottlenecks, largest for
Rijndael (and RC4).
"""

from conftest import run_once

from repro.analysis.bottlenecks import figure5, render_figure5


def test_figure5(benchmark, session_bytes, show):
    rows = run_once(benchmark, figure5, session_bytes=session_bytes)
    show(render_figure5(rows))
    by_name = {row.cipher: row.relative for row in rows}

    for name, rel in by_name.items():
        # Branch and memory: no impairment anywhere (paper sec 4.2).
        assert rel["branch"] >= 0.90, name
        assert rel["mem"] >= 0.90, name
        # The full baseline can never beat the dataflow machine.
        assert rel["all"] <= 1.001, name

    # Window: matters to no block cipher.
    for name in by_name:
        if name != "RC4":
            assert by_name[name]["window"] >= 0.95, name

    # RC4 alone is crushed by conservative alias handling.
    assert by_name["RC4"]["alias"] <= 0.7
    for name in by_name:
        if name != "RC4":
            assert by_name[name]["alias"] >= 0.9, name

    # Issue/resources are the common bottlenecks; Rijndael and RC4 largest.
    assert by_name["Rijndael"]["issue"] <= 0.8
    assert by_name["RC4"]["issue"] <= 0.8
    # The serial computational ciphers run at dataflow speed regardless.
    for name in ("IDEA", "RC6", "Mars", "Blowfish"):
        assert by_name[name]["all"] >= 0.85, name
