"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation isolates one proposed mechanism and measures its contribution
on the cipher the paper says should care about it:

* SBox caches (4W+ vs SBOX-via-d-cache on 4W) on the substitution ciphers,
* the ROLX/RORX combining instruction on MARS and RC6,
* hardware MULMOD latency on IDEA,
* XBOX versus Shi & Lee's GRP for 3DES's permutations (paper section 7),
* rotator-unit count on the rotate-heavy kernels.
"""

from conftest import run_once

from repro.isa import Features
from repro.kernels import make_kernel
from repro.kernels.des3_kernel import TripleDESKernel
from repro.sim import FOURW, FOURW_PLUS, simulate


def _cycles(kernel, session_bytes, config):
    run = kernel.encrypt(bytes(i & 0xFF for i in range(session_bytes)))
    return simulate(run.trace, config, run.warm_ranges).cycles


def test_sbox_cache_ablation(benchmark, session_bytes, show):
    """SBox caches are the 4W+ model's only change relevant to Rijndael."""

    def measure():
        rows = {}
        for name in ("Blowfish", "Rijndael", "Twofish", "3DES"):
            kernel = make_kernel(name, Features.OPT)
            rows[name] = (
                _cycles(kernel, session_bytes, FOURW),
                _cycles(kernel, session_bytes,
                        FOURW.with_(sbox_caches=4, name="4W+sbox")),
            )
        return rows

    rows = run_once(benchmark, measure)
    lines = [f"{'Cipher':<10} {'dcache-SBOX':>12} {'SBox-caches':>12} {'gain':>7}"]
    for name, (plain, cached) in rows.items():
        lines.append(f"{name:<10} {plain:>12} {cached:>12} "
                     f"{plain / cached - 1:>7.1%}")
    show("\n".join(lines))
    for name, (plain, cached) in rows.items():
        assert cached <= plain * 1.01, name
    # The substitution-bound ciphers gain measurably.
    assert rows["Blowfish"][0] / rows["Blowfish"][1] > 1.05


def test_rolx_ablation(benchmark, session_bytes, show):
    """ROLX/RORX helps MARS and RC6 (paper section 5)."""

    def measure():
        rows = {}
        for name in ("Mars", "RC6", "Twofish"):
            opt = make_kernel(name, Features.OPT)
            rot = make_kernel(name, Features.ROT)
            rows[name] = (
                _cycles(rot, session_bytes, FOURW),
                _cycles(opt, session_bytes, FOURW),
            )
        return rows

    rows = run_once(benchmark, measure)
    show("\n".join(f"{n}: rot {a} -> opt {b} cycles" for n, (a, b) in rows.items()))
    for name, (rot, opt) in rows.items():
        assert opt < rot, name


def test_mulmod_latency_ablation(benchmark, session_bytes, show):
    """IDEA's speedup tracks the MULMOD unit's latency (paper: 4 cycles)."""

    def measure():
        kernel = make_kernel("IDEA", Features.OPT)
        return {
            latency: _cycles(kernel, session_bytes,
                             FOURW.with_(mulmod_latency=latency,
                                         name=f"4W-mm{latency}"))
            for latency in (1, 2, 4, 7)
        }

    cycles = run_once(benchmark, measure)
    show("MULMOD latency sweep (IDEA): "
         + ", ".join(f"{k}cyc={v}" for k, v in cycles.items()))
    # Monotone in latency, and the paper's 4-cycle point sits well below
    # the 7-cycle (software-multiply-era) latency.
    ordered = [cycles[k] for k in sorted(cycles)]
    assert ordered == sorted(ordered)
    assert cycles[4] < cycles[7]


def test_grp_vs_xbox_ablation(benchmark, session_bytes, show):
    """Paper section 7: GRP beats XBOX per-permutation, but 3DES barely
    notices because permutations are outside the round loop."""

    def measure():
        key = bytes(range(24))
        xbox = TripleDESKernel(key, Features.OPT, use_grp=False)
        grp = TripleDESKernel(key, Features.OPT, use_grp=True)
        n = min(session_bytes, 256)
        return (
            xbox.encrypt(bytes(n)).instructions,
            grp.encrypt(bytes(n)).instructions,
            _cycles(xbox, n, FOURW_PLUS),
            _cycles(grp, n, FOURW_PLUS),
        )

    xbox_instrs, grp_instrs, xbox_cycles, grp_cycles = run_once(
        benchmark, measure
    )
    show(f"3DES permutations: XBOX {xbox_instrs} instrs/{xbox_cycles} cyc, "
         f"GRP {grp_instrs} instrs/{grp_cycles} cyc "
         f"({1 - grp_cycles / xbox_cycles:.1%} cycle saving)")
    assert grp_instrs < xbox_instrs
    # "We expect the performance impacts of this change to be small."
    assert abs(1 - grp_cycles / xbox_cycles) < 0.05


def test_rotator_count_ablation(benchmark, session_bytes, show):
    """Extra rotator/XBOX units (4W+'s other change) on the rotate ciphers."""

    def measure():
        rows = {}
        for name in ("Mars", "RC6"):
            kernel = make_kernel(name, Features.OPT)
            rows[name] = {
                units: _cycles(kernel, session_bytes,
                               FOURW.with_(num_rotator=units,
                                           name=f"4W-rot{units}"))
                for units in (1, 2, 4)
            }
        return rows

    rows = run_once(benchmark, measure)
    show("\n".join(f"{n}: " + ", ".join(f"{u}u={c}" for u, c in r.items())
                   for n, r in rows.items()))
    for name, by_units in rows.items():
        assert by_units[4] <= by_units[2] <= by_units[1], name
