"""Figure 2 benchmark: SSL web-server characterization by session length.

Shape assertions from the paper: public-key work dominates very short
sessions, private-key work reaches ~48% at 32 KB and dominates beyond, and
the crossover sits around tens of kilobytes.
"""

from conftest import run_once

from repro.analysis.ssl_model import (
    SSLModelParams,
    breakdown,
    figure2,
    from_measured_rate,
    render_figure2,
)


def test_figure2(benchmark, show):
    rows = run_once(benchmark, figure2)
    show(render_figure2(rows))

    by_length = {row.session_bytes: row for row in rows}
    # Fractions are a partition.
    for row in rows:
        assert abs(
            row.public_fraction + row.private_fraction + row.other_fraction - 1
        ) < 1e-9

    # Short sessions: public-key dominates (paper: "for very short sessions
    # fast public key cipher processing is crucial").
    assert by_length[64].public_fraction > 0.9

    # The paper's anchor: ~48% private-key share at 32 KB.
    anchor = by_length[32768]
    assert 0.40 <= anchor.private_fraction <= 0.56

    # Private share grows monotonically with session length; public falls.
    lengths = sorted(by_length)
    for shorter, longer in zip(lengths, lengths[1:]):
        assert (by_length[longer].private_fraction
                >= by_length[shorter].private_fraction)
        assert (by_length[longer].public_fraction
                <= by_length[shorter].public_fraction)

    # Long sessions: private-key processing dominates the server.
    assert by_length[1 << 20].private_fraction > 0.6


def test_figure2_from_measured_3des_rate(benchmark):
    """Tie the model's private-key cost to the simulated 3DES throughput."""
    params = run_once(benchmark, from_measured_rate, bytes_per_kilocycle=10.0)
    assert params.private_per_byte == 100.0
    row = breakdown(32768, params)
    assert row.private_fraction > 0.4


def test_default_parameters_documented(benchmark):
    params = run_once(benchmark, SSLModelParams)
    # Strong public-key ops cost ~1000x a private-key block (paper sec 1):
    # one RSA op versus one 64-bit 3DES block at ~90 cycles/byte.
    per_block_private = params.private_per_byte * 8
    assert 1000 <= params.public_key_cycles / per_block_private <= 10000
