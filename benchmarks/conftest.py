"""Shared benchmark configuration.

Session length defaults to 512 bytes so the whole suite regenerates in
minutes on a laptop; set ``REPRO_SESSION_BYTES=4096`` for the paper's
full session length.

Set ``REPRO_BENCH_HISTORY=results/bench/history.jsonl`` to append every
measurement to the benchmark history (schema ``repro.obs.bench/1``) for
trend tracking and regression detection via ``repro.tools.bench``.
"""

import os
import resource
import time

import pytest

SESSION_BYTES = int(os.environ.get("REPRO_SESSION_BYTES", "512"))


@pytest.fixture
def session_bytes() -> int:
    return SESSION_BYTES


@pytest.fixture
def show(capsys):
    """Print a result table to the terminal from inside a test."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _show


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a deterministic, expensive simulation exactly once.

    With ``REPRO_BENCH_HISTORY`` set, the measurement is also appended to
    the benchmark history for ``repro.tools.bench compare``/``report``.
    """
    timed = _timed(fn) if os.environ.get("REPRO_BENCH_HISTORY") else fn
    result = benchmark.pedantic(timed, args=args, kwargs=kwargs,
                                rounds=1, iterations=1, warmup_rounds=0)
    if timed is not fn:
        _record_history(benchmark, timed.wall_seconds)
    return result


def _timed(fn):
    def timed(*args, **kwargs):
        start = time.perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            timed.wall_seconds = time.perf_counter() - start

    return timed


def _record_history(benchmark, wall_seconds):
    from repro.obs.bench import BenchHistory, BenchRecord, \
        environment_fingerprint
    from repro.sim.backends import DEFAULT_BACKEND

    # benchmark.fullname looks like "benchmarks/test_fig4_throughput.py::
    # test_blowfish[...]"; the module stem names the suite.
    module, _, name = benchmark.fullname.partition("::")
    suite = os.path.basename(module).removesuffix(".py")
    suite = suite.removeprefix("test_") or suite
    BenchHistory.from_env().append(BenchRecord(
        suite=suite,
        benchmark=name or benchmark.name,
        wall_seconds=wall_seconds,
        peak_memory_bytes=resource.getrusage(
            resource.RUSAGE_SELF).ru_maxrss * 1024,
        extra={"session_bytes": SESSION_BYTES},
        # Stamp the engine so regression baselines never mix backends.
        env=dict(environment_fingerprint(), backend=DEFAULT_BACKEND),
    ))
