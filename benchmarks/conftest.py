"""Shared benchmark configuration.

Session length defaults to 512 bytes so the whole suite regenerates in
minutes on a laptop; set ``REPRO_SESSION_BYTES=4096`` for the paper's
full session length.
"""

import os

import pytest

SESSION_BYTES = int(os.environ.get("REPRO_SESSION_BYTES", "512"))


@pytest.fixture
def session_bytes() -> int:
    return SESSION_BYTES


@pytest.fixture
def show(capsys):
    """Print a result table to the terminal from inside a test."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _show


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a deterministic, expensive simulation exactly once."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
