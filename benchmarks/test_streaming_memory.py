"""Acceptance benchmark: streaming bounds trace memory at no throughput cost.

The batch path materializes the whole dynamic trace (16 bytes per entry,
so a 1 MiB RC4 session holds ~340 MB of trace); the streaming path keeps
one chunk plus the pipeline's O(window + prune_interval) state.  This
benchmark runs the same session both ways, asserts the bounded-memory
contract and throughput parity, and records the numbers to
``BENCH_streaming.json``.

Throughput is measured without instrumentation; the ``tracemalloc``
whole-process assertion runs on a smaller session (tracing every
allocation slows the interpreter ~50x) -- the streaming state it bounds
does not grow with session length, which is exactly the claim.

Both paths run the fastest shipped stack (``backend="compiled"``,
``timing_engine="specialized"``): the claim under test is stream/batch
parity, which holds for any backend/engine pairing, and the committed
artifact should reflect what a current run costs.

Session length defaults to 16 KiB so CI finishes in seconds; the
committed artifact was generated with ``REPRO_STREAM_BENCH_BYTES=1048576``
(the paper-scale 1 MiB session).
"""

import json
import os
import time
import tracemalloc
from pathlib import Path

from repro.runner import Experiment, ExperimentOptions, ResultCache, Runner
from repro.sim import FOURW

BENCH_BYTES = int(os.environ.get("REPRO_STREAM_BENCH_BYTES", "16384"))
BENCH_OUT = Path(os.environ.get("REPRO_BENCH_OUT", "BENCH_streaming.json"))
TRACED_BYTES = min(BENCH_BYTES, 4096)
CHUNK_SIZE = 4096
#: Streaming must never hold more dynamic-trace payload than one chunk.
CHUNK_BYTES_CAP = CHUNK_SIZE * 16
#: Fixed tracemalloc ceiling for a whole streaming run: chunk buffers,
#: pipeline state, kernel memory image -- none of it scales with the
#: session, so the cap is a constant.
TRACEMALLOC_CAP = 24 * 1024 * 1024


def _run(session_bytes: int, stream: bool):
    runner = Runner(cache=ResultCache.disabled(), stream=stream,
                    chunk_size=CHUNK_SIZE, backend="compiled",
                    timing_engine="specialized")
    options = ExperimentOptions(cipher="RC4", session_bytes=session_bytes)
    start = time.perf_counter()
    results = runner.run([Experiment(options, FOURW)])
    elapsed = time.perf_counter() - start
    return results[0], elapsed, runner.stats.peak_trace_bytes


def test_streaming_bounds_trace_memory(show):
    streamed, stream_time, stream_peak = _run(BENCH_BYTES, stream=True)
    batch, batch_time, batch_peak = _run(BENCH_BYTES, stream=False)

    # Bit-identical results either way.
    assert streamed.stats == batch.stats
    assert streamed.instructions == batch.instructions

    # The bounded-memory contract: one chunk, regardless of session size.
    assert 0 < stream_peak <= CHUNK_BYTES_CAP
    memory_ratio = batch_peak / stream_peak
    assert memory_ratio >= 10.0, (
        f"streaming only {memory_ratio:.1f}x below batch trace memory"
    )

    # Throughput: streaming must not meaningfully regress.  The committed
    # BENCH_streaming.json records the precise ratio at 1 MiB (the <= 5%
    # acceptance bound); here a loose cap keeps CI robust to timer noise.
    slowdown = stream_time / batch_time if batch_time else 1.0
    assert slowdown <= 1.25, (
        f"streaming {slowdown:.2f}x slower than batch"
    )

    # Whole-process bound under tracemalloc: streaming state is constant,
    # so a fixed cap holds no matter the session length.
    tracemalloc.start()
    traced_result, _, traced_peak_trace = _run(TRACED_BYTES, stream=True)
    _, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert traced_result.stats.cycles > 0
    assert traced_peak_trace <= CHUNK_BYTES_CAP
    assert traced_peak <= TRACEMALLOC_CAP, (
        f"streaming run traced {traced_peak} bytes, cap {TRACEMALLOC_CAP}"
    )

    report = {
        "session_bytes": BENCH_BYTES,
        "cipher": "RC4",
        "config": "4W",
        "chunk_size": CHUNK_SIZE,
        "instructions": streamed.instructions,
        "cycles": streamed.stats.cycles,
        "stream_seconds": round(stream_time, 3),
        "batch_seconds": round(batch_time, 3),
        "stream_over_batch": round(slowdown, 4),
        "stream_peak_trace_bytes": stream_peak,
        "batch_peak_trace_bytes": batch_peak,
        "trace_memory_ratio": round(memory_ratio, 1),
        "tracemalloc_session_bytes": TRACED_BYTES,
        "tracemalloc_peak_bytes": traced_peak,
    }
    BENCH_OUT.write_text(json.dumps(report, indent=2) + "\n")
    show(
        f"streaming {BENCH_BYTES}B session: trace memory "
        f"{stream_peak}B vs {batch_peak}B ({memory_ratio:.0f}x), "
        f"wall {stream_time:.2f}s vs {batch_time:.2f}s "
        f"({slowdown:.2f}x) -> {BENCH_OUT}"
    )
