"""Acceptance benchmark: the specialized timing engine beats generic >= 5x.

The tentpole claim for the timing-engine split is that specializing the
cycle-accurate pipeline per (program, config) buys a large factor of
timing-path throughput with *bit-identical* SimStats.  This benchmark
runs the repository's canonical timing run -- one RC4 session across the
standard machine grid {4W, 8W+, DF} -- through both engines, asserts
identity where both engines run the full trace, measures timing-path
instructions/second per leg, and records the numbers to
``BENCH_timing.json`` plus (with ``REPRO_BENCH_HISTORY`` set) the
benchmark history for trend tracking.

The generic engine's DF leg is measured on a bounded instruction prefix:
its store-queue scan is quadratic in the unbounded DF load/store queue
(``lsq_size`` is effectively infinite there), so a full paper-scale run
takes hours.  Per-instruction cost grows monotonically with trace length
(every load scans the entire store history), so the prefix rate strictly
*overstates* the full-run rate -- the aggregate speedup computed from it
is a conservative lower bound.  Both the half- and full-prefix rates are
recorded so the decay is visible in the artifact.

Session length defaults to 64 KiB so CI finishes in seconds; the
committed artifact was generated with ``REPRO_TIMING_BENCH_BYTES=1048576``
(the paper-scale 1 MiB session), where the >= 5x acceptance bar applies.
Specialized wall time *includes* code generation: the code cache is
cleared first, so the reported speedup is what a cold run actually sees.
"""

import json
import os
import time
from pathlib import Path

from repro.kernels import make_kernel
from repro.sim.config import DATAFLOW, EIGHTW_PLUS, FOURW
from repro.sim.timing import make_pipeline, specialized as specialized_mod

BENCH_BYTES = int(os.environ.get("REPRO_TIMING_BENCH_BYTES", "65536"))
BENCH_OUT = Path(os.environ.get("REPRO_TIMING_BENCH_OUT",
                                "BENCH_timing.json"))
#: The paper-scale acceptance bar.  Short CI sessions amortize the
#: one-time code generation over fewer instructions, so the floor scales
#: down (mirroring ``test_backend_throughput``).
SPEEDUP_FLOOR = 5.0 if BENCH_BYTES >= 1 << 20 else 2.5
#: Instructions fed to the generic engine's DF leg (see module docstring).
GENERIC_DF_PREFIX = int(os.environ.get("REPRO_TIMING_BENCH_DF_PREFIX",
                                       "65536"))

CONFIGS = (FOURW, EIGHTW_PLUS, DATAFLOW)


def _feed(kernel_run, config, engine, limit=None):
    """Time one pipeline over the trace (or its first ``limit`` entries).

    Returns ``(stats_or_None, seconds, instructions_fed)``; stats are
    only produced for full-trace runs (a prefix's stats describe a
    different trace, so they are not comparable across legs).
    """
    trace = kernel_run.trace
    pipe = make_pipeline(config, trace.static, trace.program,
                         warm_ranges=kernel_run.warm_ranges, engine=engine)
    fed = 0
    start = time.perf_counter()
    for chunk in trace.chunks(4096):
        pipe.feed(chunk)
        fed += len(chunk)
        if limit is not None and fed >= limit:
            break
    stats = pipe.finish() if limit is None else None
    elapsed = time.perf_counter() - start
    return stats, elapsed, fed


def test_specialized_timing_speedup(show):
    specialized_mod.cache_clear()  # charge codegen to the specialized runs
    kernel_run = make_kernel("RC4").encrypt(bytes(BENCH_BYTES))
    total_instructions = len(kernel_run.trace)

    legs = {}
    stats_by_leg = {}
    for config in CONFIGS:
        for engine in ("generic", "specialized"):
            limit = (GENERIC_DF_PREFIX
                     if engine == "generic" and config is DATAFLOW
                     else None)
            if limit is not None:
                # Record the half-prefix rate too, making the O(n^2)
                # decay (and hence the bound's conservatism) visible.
                _, half_time, half_fed = _feed(
                    kernel_run, config, engine, limit=limit // 2)
            stats, elapsed, fed = _feed(
                kernel_run, config, engine, limit=limit)
            rate = fed / elapsed
            leg = {
                "instructions_measured": fed,
                "seconds": round(elapsed, 3),
                "instructions_per_second": round(rate),
                "full_trace": limit is None,
            }
            if limit is not None:
                leg["half_prefix_instructions_per_second"] = round(
                    half_fed / half_time)
                # Extrapolated full-run time at the (overstated) prefix
                # rate; the true generic time is larger.
                leg["extrapolated_seconds"] = round(
                    total_instructions / rate, 3)
            legs[f"{config.name}/{engine}"] = leg
            stats_by_leg[(config.name, engine)] = stats

    # Bit-identical SimStats wherever both engines ran the full trace.
    for config in (FOURW, EIGHTW_PLUS):
        assert stats_by_leg[(config.name, "specialized")] == \
            stats_by_leg[(config.name, "generic")], config.name

    def total_seconds(engine):
        out = 0.0
        for config in CONFIGS:
            leg = legs[f"{config.name}/{engine}"]
            out += leg.get("extrapolated_seconds", leg["seconds"])
        return out

    generic_seconds = total_seconds("generic")
    specialized_seconds = total_seconds("specialized")
    speedup = generic_seconds / specialized_seconds

    report = {
        "session_bytes": BENCH_BYTES,
        "cipher": "RC4",
        "configs": [config.name for config in CONFIGS],
        "instructions": total_instructions,
        "generic_seconds": round(generic_seconds, 3),
        "specialized_seconds": round(specialized_seconds, 3),
        "speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "generic_df_prefix": GENERIC_DF_PREFIX,
        "legs": legs,
    }
    BENCH_OUT.write_text(json.dumps(report, indent=2) + "\n")
    _record_history(legs, total_instructions, speedup)
    show(
        f"RC4 {BENCH_BYTES}B timing grid {{4W, 8W+, DF}}: generic "
        f"{generic_seconds:.2f}s (DF extrapolated), specialized "
        f"{specialized_seconds:.2f}s -> {speedup:.2f}x "
        f"(floor {SPEEDUP_FLOOR}x, conservative) -> {BENCH_OUT}"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"specialized timing engine only {speedup:.2f}x over generic "
        f"(generic {generic_seconds:.3f}s, "
        f"specialized {specialized_seconds:.3f}s)"
    )


def _record_history(legs, total_instructions, speedup):
    if not os.environ.get("REPRO_BENCH_HISTORY"):
        return
    from repro.obs.bench import BenchHistory, BenchRecord, \
        environment_fingerprint

    history = BenchHistory.from_env()
    for name, leg in legs.items():
        config_name, _, engine = name.partition("/")
        # Each record names the engine that produced it, so regression
        # baselines never mix engines (``_same_environment`` matches on
        # ``timing_engine``).
        history.append(BenchRecord(
            suite="timing_throughput",
            benchmark=f"rc4_{config_name}_{engine}",
            wall_seconds=leg["seconds"],
            throughput=leg["instructions_per_second"],
            throughput_unit="instructions/s",
            extra={
                "session_bytes": BENCH_BYTES,
                "config": config_name,
                "instructions": total_instructions,
                "full_trace": leg["full_trace"],
                "speedup": round(speedup, 2),
            },
            env=dict(environment_fingerprint(), timing_engine=engine),
        ))
