"""Figure 6 benchmark: key-setup cost versus session length.

Shape assertions from the paper: Blowfish is the outlier whose setup only
drops below ~10% of session time past 64 KB; IDEA (by design) and 3DES
(because its kernel is so expensive) have small setup overhead even for
short sessions; the rest drop below 10% by 4 KB sessions.
"""

from conftest import run_once

from repro.analysis.setup_cost import figure6, render_figure6


def test_figure6(benchmark, show):
    rows = run_once(benchmark, figure6)
    show(render_figure6(rows))
    by_name = {row.cipher: row for row in rows}

    # Setup fraction decreases monotonically in session length.
    for row in rows:
        fractions = [row.fraction[n] for n in sorted(row.fraction)]
        assert all(a >= b for a, b in zip(fractions, fractions[1:])), row.cipher

    # Blowfish: the paper's outlier, >10% until past 64 KB sessions.
    assert by_name["Blowfish"].fraction[16384] > 0.10
    assert by_name["Blowfish"].fraction[65536] < 0.10
    assert by_name["Blowfish"].setup_cycles == max(
        r.setup_cycles for r in rows
    )

    # IDEA: designed for very low-cost startup.
    assert by_name["IDEA"].fraction[64] < 0.10
    assert by_name["IDEA"].setup_cycles == min(r.setup_cycles for r in rows)

    # 3DES: small setup relative to its costly kernel by 1 KB sessions.
    assert by_name["3DES"].fraction[1024] < 0.10

    # Moderate group: well below 10% at 4 KB and beyond (paper sec 4.2).
    for name in ("Mars", "RC4", "RC6", "Rijndael", "Twofish"):
        assert by_name[name].fraction[4096] < 0.15, name
        assert by_name[name].fraction[16384] < 0.05, name
