"""Table 2 benchmark: the microarchitecture models.

Prints the configuration table and measures the timing simulator's raw
throughput (simulated instructions per second) on a representative kernel
trace -- the reproduction's analogue of SimpleScalar's simulation speed.
"""

from conftest import run_once

from repro.analysis.tables import render_table2
from repro.isa import Features
from repro.kernels import make_kernel
from repro.sim import DATAFLOW, EIGHTW_PLUS, FOURW, FOURW_PLUS, simulate


def test_table2(benchmark, show):
    text = run_once(benchmark, render_table2)
    show(text)
    for name in ("4W", "4W+", "8W+", "DF"):
        assert name in text


def test_model_ladder_is_monotonic(benchmark, session_bytes):
    kernel = make_kernel("Twofish", Features.OPT)
    run = kernel.encrypt(bytes(session_bytes))

    def simulate_ladder():
        return [
            simulate(run.trace, config, run.warm_ranges).cycles
            for config in (FOURW, FOURW_PLUS, EIGHTW_PLUS, DATAFLOW)
        ]

    cycles = run_once(benchmark, simulate_ladder)
    assert cycles == sorted(cycles, reverse=True)


def test_simulator_throughput(benchmark, session_bytes):
    """Timing-model speed: dynamic instructions simulated per second."""
    kernel = make_kernel("Rijndael", Features.OPT)
    run = kernel.encrypt(bytes(session_bytes))

    stats = benchmark(simulate, run.trace, FOURW, run.warm_ranges)
    assert stats.instructions == len(run.trace)
