"""Figure 10 benchmark: optimized-kernel speedups on the Table 2 machines.

Shape assertions from the paper's section 6: removing rotates hurts MARS
and RC6 the most; every optimized kernel beats the rotate baseline; IDEA is
the biggest winner (MULMOD); RC6 gains the least beyond rotates; the 4W+
SBox caches help the substitution ciphers; extra width helps the ciphers
with ILP (RC4, Rijndael, Twofish); and the dataflow bars bound everything.
"""

from conftest import run_once

from repro.analysis.speedups import figure10, render_figure10, summary


def test_figure10(benchmark, session_bytes, show):
    rows = run_once(benchmark, figure10, session_bytes=session_bytes)
    show(render_figure10(rows))
    by_name = {row.cipher: row for row in rows}

    # No-rotate penalty: worst for MARS and RC6 (paper: 40% and 24%).
    assert by_name["Mars"].orig_4w < 0.9
    assert by_name["RC6"].orig_4w < 0.9
    worst_two = sorted(rows, key=lambda r: r.orig_4w)[:2]
    assert {row.cipher for row in worst_two} == {"Mars", "RC6"}
    # Rotate-light ciphers are unaffected.
    for name in ("Blowfish", "IDEA", "Rijndael", "RC4"):
        assert by_name[name].orig_4w >= 0.95, name

    # Every optimized kernel beats the rotate baseline on 4W.
    for row in rows:
        assert row.opt_4w > 1.0, row.cipher

    # IDEA gains the most (hardware MULMOD); RC6 the least beyond rotates.
    assert by_name["IDEA"].opt_4w == max(r.opt_4w for r in rows)
    assert by_name["RC6"].opt_4w == min(r.opt_4w for r in rows)

    # Monotonicity up the machine ladder.
    for row in rows:
        assert row.opt_4w_plus >= row.opt_4w * 0.999, row.cipher
        assert row.opt_8w_plus >= row.opt_4w_plus * 0.999, row.cipher
        assert row.opt_dataflow >= row.opt_8w_plus * 0.999, row.cipher

    # Extra width helps the ILP-rich ciphers most (paper: RC4, Rijndael,
    # Twofish keep scaling; the serial ciphers are already at DF speed).
    assert by_name["Rijndael"].opt_8w_plus > by_name["Rijndael"].opt_4w_plus * 1.2
    for name in ("IDEA", "RC6"):
        assert by_name[name].opt_8w_plus <= by_name[name].opt_4w_plus * 1.1, name

    agg = summary(rows)
    # Paper: 59% and 74%.  The reproduction's hand kernels have leaner
    # baselines than 2000-era compiled C, so the bar is a substantial
    # average speedup with the no-rotate margin strictly larger.
    assert agg.mean_opt_vs_rot >= 1.25
    assert agg.mean_opt_vs_norot > agg.mean_opt_vs_rot
