"""Acceptance benchmark: the compiled backend beats the interpreter >= 10x.

The tentpole claim for the execution-backend redesign is that compiling a
finalized program into a specialized Python generator buys an order of
magnitude of functional-simulation throughput with *bit-identical*
results.  This benchmark runs the same traceless RC4 session through both
backends, asserts identity (ciphertext, final memory, instruction count),
measures instructions/second, and records the numbers to
``BENCH_compiled.json`` plus (with ``REPRO_BENCH_HISTORY`` set) the
benchmark history for trend tracking.

Session length defaults to 64 KiB so CI finishes in seconds; the
committed artifact was generated with ``REPRO_BACKEND_BENCH_BYTES=1048576``
(the paper-scale 1 MiB session), where the >= 10x acceptance bar applies.
Compiled wall time *includes* code generation: the cache is cleared first,
so the reported speedup is what a cold run actually sees.
"""

import json
import os
import time
from pathlib import Path

from repro.kernels import make_kernel
from repro.sim import Machine
from repro.sim.backends import compiled as compiled_mod

BENCH_BYTES = int(os.environ.get("REPRO_BACKEND_BENCH_BYTES", "65536"))
BENCH_OUT = Path(os.environ.get("REPRO_BACKEND_BENCH_OUT",
                                "BENCH_compiled.json"))
#: The paper-scale acceptance bar.  Short CI sessions amortize the one-time
#: code generation over fewer instructions, so the floor scales down.
SPEEDUP_FLOOR = 10.0 if BENCH_BYTES >= 1 << 20 else 2.5


def _run(backend: str):
    kernel = make_kernel("RC4")
    program, memory, layout = kernel.prepare(bytes(BENCH_BYTES), None)
    machine = Machine(program, memory)
    start = time.perf_counter()
    result = machine.execute(backend=backend, record_trace=False)
    elapsed = time.perf_counter() - start
    output = memory.read_bytes(layout.output, BENCH_BYTES)
    return result, elapsed, output, machine


def test_compiled_backend_speedup(show):
    compiled_mod.cache_clear()  # charge codegen to the compiled run
    interp, interp_time, interp_out, interp_machine = _run("interpreter")
    compiled, compiled_time, compiled_out, compiled_machine = _run("compiled")

    # Bit-identical: same ciphertext, same counters, same final state.
    assert compiled_out == interp_out
    assert compiled.instructions == interp.instructions
    assert compiled_machine.regs == interp_machine.regs
    assert bytes(compiled_machine.memory.data) == \
        bytes(interp_machine.memory.data)

    interp_ips = interp.instructions / interp_time
    compiled_ips = compiled.instructions / compiled_time
    speedup = compiled_ips / interp_ips

    report = {
        "session_bytes": BENCH_BYTES,
        "cipher": "RC4",
        "record_trace": False,
        "instructions": compiled.instructions,
        "interpreter_seconds": round(interp_time, 3),
        "compiled_seconds": round(compiled_time, 3),
        "interpreter_instructions_per_second": round(interp_ips),
        "compiled_instructions_per_second": round(compiled_ips),
        "speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
    }
    BENCH_OUT.write_text(json.dumps(report, indent=2) + "\n")
    _record_history(interp, interp_time, interp_ips,
                    compiled_time, compiled_ips, speedup)
    show(
        f"RC4 {BENCH_BYTES}B traceless: interpreter "
        f"{interp_ips / 1e6:.2f}M instr/s, compiled "
        f"{compiled_ips / 1e6:.2f}M instr/s -> {speedup:.2f}x "
        f"(floor {SPEEDUP_FLOOR}x) -> {BENCH_OUT}"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"compiled backend only {speedup:.2f}x over the interpreter "
        f"(interpreter {interp_time:.3f}s, compiled {compiled_time:.3f}s)"
    )


def _record_history(interp, interp_time, interp_ips,
                    compiled_time, compiled_ips, speedup):
    if not os.environ.get("REPRO_BENCH_HISTORY"):
        return
    from repro.obs.bench import BenchHistory, BenchRecord, \
        environment_fingerprint

    history = BenchHistory.from_env()
    extra = {
        "session_bytes": BENCH_BYTES,
        "cipher": "RC4",
        "instructions": interp.instructions,
        "speedup": round(speedup, 2),
    }
    # Each record names the backend it measured, so regression baselines
    # never mix engines (``_same_environment`` matches on it).
    history.append(BenchRecord(
        suite="backend_throughput", benchmark="rc4_interpreter",
        wall_seconds=interp_time, throughput=interp_ips,
        throughput_unit="instructions/s", extra=dict(extra),
        env=dict(environment_fingerprint(), backend="interpreter"),
    ))
    history.append(BenchRecord(
        suite="backend_throughput", benchmark="rc4_compiled",
        wall_seconds=compiled_time, throughput=compiled_ips,
        throughput_unit="instructions/s", extra=dict(extra),
        env=dict(environment_fingerprint(), backend="compiled"),
    ))
