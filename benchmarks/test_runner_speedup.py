"""Acceptance benchmark: the result cache makes re-runs dramatically cheaper.

A cold Figure 4 throughput sweep (all eight ciphers, three machine models)
simulates everything; a warm sweep against the same cache directory should
be pure JSON reads.  The tentpole acceptance criterion is a >= 5x win.
"""

import time

from repro.analysis import throughput
from repro.runner import ExperimentOptions, ResultCache, Runner


def _figure4_options(session_bytes):
    return throughput.default_options(session_bytes)


def _sweep(cache_dir, session_bytes):
    runner = Runner(cache=ResultCache(cache_dir))
    start = time.perf_counter()
    rows = throughput.run(_figure4_options(session_bytes), runner=runner)
    return rows, time.perf_counter() - start, runner


def test_warm_cache_figure4_at_least_5x_faster(tmp_path, session_bytes, show):
    cache_dir = tmp_path / "cache"
    cold_rows, cold_time, cold_runner = _sweep(cache_dir, session_bytes)
    warm_rows, warm_time, warm_runner = _sweep(cache_dir, session_bytes)

    experiments = len(_figure4_options(session_bytes)) * len(
        throughput.THROUGHPUT_CONFIGS
    )
    assert cold_runner.stats.cache_misses == experiments
    assert warm_runner.stats.cache_hits == experiments
    assert warm_runner.stats.functional_runs == 0

    # Bit-identical results either way.
    assert [row.as_tuple() for row in warm_rows] == [
        row.as_tuple() for row in cold_rows
    ]

    speedup = cold_time / warm_time if warm_time else float("inf")
    show(
        f"figure 4 sweep ({experiments} experiments, "
        f"{session_bytes}B sessions): cold {cold_time:.2f}s, "
        f"warm {warm_time * 1000:.0f}ms -> {speedup:.0f}x"
    )
    assert speedup >= 5.0, (
        f"warm cache only {speedup:.1f}x faster "
        f"(cold {cold_time:.3f}s, warm {warm_time:.3f}s)"
    )
