"""Table 1 benchmark: the cipher suite inventory and key-setup timing.

Also measures reference key-setup wall time per cipher (the Python-level
cost of instantiating each cipher), which is the substrate behind the
Figure 6 experiments.
"""

from conftest import run_once

from repro.analysis.tables import render_table1
from repro.ciphers import SUITE


def test_table1(benchmark, show):
    text = run_once(benchmark, render_table1)
    show(text)
    assert "3DES" in text and "Twofish" in text
    assert len(SUITE) == 8
    # Every cipher uses at least 128 key bits (paper sec 3.1).
    for info in SUITE:
        assert info.key_bits >= 128


def test_reference_key_setup_benchmark(benchmark):
    """Wall-time of all eight reference key setups (pure-Python substrate)."""

    def setup_all():
        return [info.make(bytes(info.key_bytes)) for info in SUITE]

    ciphers = run_once(benchmark, setup_all)
    assert len(ciphers) == 8
