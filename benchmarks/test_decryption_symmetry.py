"""Footnote 1 benchmark: decryption performance mirrors encryption.

The paper only reports encryption numbers, noting "because of the symmetry
between the encryption and decryption algorithms, performance was comparable
for these codes for all experiments."  This benchmark measures both
directions of every optimized kernel on the 4W machine and asserts the
symmetry -- with one interesting nuance the paper leaves implicit: CBC
*decryption* has no output-feedback recurrence (each block's cipher input is
ciphertext, available immediately), so on sufficiently wide machines
decryption can exceed encryption throughput.
"""

from conftest import run_once

from repro.isa import Features
from repro.kernels import KERNEL_NAMES, make_kernel
from repro.sim import DATAFLOW, FOURW, simulate


def _measure(session_bytes):
    rows = []
    for name in KERNEL_NAMES:
        kernel = make_kernel(name, Features.OPT)
        blocks = session_bytes // max(kernel.block_bytes, 1)
        data = bytes(i & 0xFF for i in range(blocks * max(kernel.block_bytes, 1)))
        iv = bytes(kernel.block_bytes) if kernel.block_bytes > 1 else None
        enc = kernel.encrypt(data, iv)
        dec = kernel.decrypt(enc.ciphertext, iv)
        enc_4w = simulate(enc.trace, FOURW, enc.warm_ranges).cycles
        dec_4w = simulate(dec.trace, FOURW, dec.warm_ranges).cycles
        enc_df = simulate(enc.trace, DATAFLOW, enc.warm_ranges).cycles
        dec_df = simulate(dec.trace, DATAFLOW, dec.warm_ranges).cycles
        rows.append((name, enc_4w, dec_4w, enc_df, dec_df))
    return rows


def test_decryption_symmetry(benchmark, session_bytes, show):
    rows = run_once(benchmark, _measure, min(session_bytes, 512))
    lines = [f"{'Cipher':<10} {'enc-4W':>8} {'dec-4W':>8} {'ratio':>6} "
             f"{'dec-DF speedup':>15}"]
    for name, enc_4w, dec_4w, enc_df, dec_df in rows:
        lines.append(
            f"{name:<10} {enc_4w:>8} {dec_4w:>8} {dec_4w / enc_4w:>6.2f} "
            f"{enc_df / dec_df:>15.2f}"
        )
    show("\n".join(lines))

    for name, enc_4w, dec_4w, enc_df, dec_df in rows:
        # Footnote 1: comparable on the realistic machine -- never slower
        # than ~1.3x, and sometimes *faster*, because CBC decryption's
        # missing output recurrence lets the 4-wide overlap blocks.
        assert 0.5 <= dec_4w / enc_4w <= 1.3, name
    # The CBC-decrypt parallelism nuance: for the serial block ciphers the
    # dataflow machine decrypts strictly faster than it encrypts.
    df_gain = {name: enc_df / dec_df for name, _, _, enc_df, dec_df in rows}
    parallel_winners = [n for n, g in df_gain.items() if g > 1.5]
    assert len(parallel_winners) >= 3
